//! The discrete-event simulation loop.

use green_accounting::{ChargeContext, MethodKind};
use green_carbon::{HourlyTrace, IntensitySource};
use green_machines::FleetMachine;
use green_obs::{Counter, NoopRecorder, Phase, Recorder, Stopwatch};
use green_units::TimePoint;
use green_workload::Trace;

use crate::arena::SimArena;
use crate::cluster::{Cluster, QueuedJob};
use crate::event::EventKind;
use crate::market::MarketInputs;
use crate::metrics::{JobOutcome, RunMetrics};
use crate::policy::{MachineOption, Policy};
use crate::profile::PlacementTable;

/// Configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The user's machine-selection policy.
    pub policy: Policy,
    /// The accounting method driving cost-aware policies (Greedy/Mixed)
    /// and the `charges` the allocation experiment consumes.
    pub decision_method: MethodKind,
    /// Simulation start year (fixes machine ages → carbon rates).
    pub sim_year: i32,
    /// Number of simulated users owning a private Desktop.
    pub users: u32,
    /// Backfill scan depth for every cluster (`0` = pure FCFS); see
    /// [`crate::cluster::DEFAULT_BACKFILL_DEPTH`].
    pub backfill_depth: usize,
    /// Posted prices and agent elasticities (`None` = no market: every
    /// quote is the raw method charge and nobody shifts for price).
    pub market: Option<MarketInputs>,
}

impl SimConfig {
    /// Standard configuration for a policy/method pair.
    pub fn new(policy: Policy, decision_method: MethodKind, users: u32) -> SimConfig {
        SimConfig {
            policy,
            decision_method,
            sim_year: 2023,
            users,
            backfill_depth: crate::cluster::DEFAULT_BACKFILL_DEPTH,
            market: None,
        }
    }

    /// Attaches market inputs (posted prices + agent elasticities).
    pub fn with_market(mut self, market: MarketInputs) -> SimConfig {
        self.market = Some(market);
        self
    }
}

/// A configured simulator, borrowing the immutable experiment state.
pub struct Simulator<'a> {
    trace: &'a Trace,
    fleet: &'a [FleetMachine],
    table: &'a PlacementTable,
    intensity: &'a [HourlyTrace],
    config: SimConfig,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator. `intensity` is one trace per fleet machine,
    /// index-aligned.
    pub fn new(
        trace: &'a Trace,
        fleet: &'a [FleetMachine],
        table: &'a PlacementTable,
        intensity: &'a [HourlyTrace],
        config: SimConfig,
    ) -> Self {
        assert_eq!(fleet.len(), intensity.len());
        assert_eq!(fleet.len(), table.machine_count());
        Simulator {
            trace,
            fleet,
            table,
            intensity,
            config,
        }
    }

    /// Provisioned cores of a job on a machine: request rounded up to the
    /// allocation slice (not capped per node — multi-node jobs hold
    /// multiple slices).
    fn provisioned_cores(&self, machine: usize, cores: u32) -> u32 {
        let slice = self.fleet[machine].spec.slice_cores;
        cores.max(1).div_ceil(slice) * slice
    }

    /// The posted price multiplier for a machine at a moment: 1.0 without
    /// a market, the market's schedule otherwise.
    fn posted_multiplier(&self, machine: usize, at: TimePoint) -> f64 {
        self.config
            .market
            .as_ref()
            .map(|m| m.prices.multiplier_at(machine, at))
            .unwrap_or(1.0)
    }

    /// The posted price of a job on a machine at `at`: the method charge
    /// times the posted multiplier.
    fn posted_quote(&self, machine: usize, job_idx: usize, at: TimePoint) -> f64 {
        let ctx = self.charge_context(machine, job_idx, at);
        self.config.decision_method.charge(&ctx).value() * self.posted_multiplier(machine, at)
    }

    /// Builds the policy's view of one machine for one job. `cost` is the
    /// *posted* price — when a market is active, cost-aware policies see
    /// (and react to) the schedule's multipliers, not the raw charge,
    /// and the quote is read at the machine's *expected start* (now +
    /// estimated queue wait): what a job will actually pay and emit is
    /// set by the hour it starts drawing power, not the hour it was
    /// submitted.
    fn option(
        &self,
        clusters: &[Cluster],
        machine: usize,
        job_idx: usize,
        now: TimePoint,
    ) -> MachineOption {
        let job = &self.trace.jobs[job_idx];
        let provisioned = self.provisioned_cores(machine, job.cores);
        let eligible = clusters[machine].eligible(provisioned);
        let runtime = self.table.runtime(job, machine);
        let energy = self.table.energy(job, machine);
        let est_wait = clusters[machine].estimated_wait(provisioned, job.user, now);
        let quote_at = if self.config.market.is_some() {
            now + est_wait
        } else {
            now
        };
        MachineOption {
            machine,
            eligible,
            runtime,
            energy,
            cost: self.posted_quote(machine, job_idx, quote_at),
            est_wait,
        }
    }

    /// For GreedyShift and Adaptive: the delay (in whole hours, `1..=max`)
    /// that minimizes the cheapest posted machine quote over the window,
    /// or `None` when no delayed quote beats the immediate one by at
    /// least `required_saving` (a fraction of the immediate cost).
    fn best_submission_delay(
        &self,
        job_idx: usize,
        now: TimePoint,
        max_delay_hours: u32,
        required_saving: f64,
    ) -> Option<u32> {
        let quote_at = |at: TimePoint| -> f64 {
            (0..self.fleet.len())
                .map(|m| self.posted_quote(m, job_idx, at))
                .fold(f64::INFINITY, f64::min)
        };
        let now_cost = quote_at(now);
        let mut best: Option<(u32, f64)> = None;
        for delay in 1..=max_delay_hours {
            let cost = quote_at(now + green_units::TimeSpan::from_hours(delay as f64));
            if cost < best.map(|(_, c)| c).unwrap_or(now_cost) {
                best = Some((delay, cost));
            }
        }
        // Only shift for a material gain; a fraction of a percent is not
        // worth sitting in a queue an hour longer.
        best.filter(|(_, c)| *c < now_cost * (1.0 - required_saving))
            .map(|(d, _)| d)
    }

    /// The submission delay an adaptive agent picks for a job, if any:
    /// bounded by the agent's slack and the market-wide cap, with the
    /// required saving shrinking as elasticity grows.
    ///
    /// Unlike [`best_submission_delay`](Simulator::best_submission_delay),
    /// quotes are anchored at each machine's *expected start*: delaying
    /// submission by `d` hours moves the start to `now + d + max(0,
    /// wait − d)` — the queue keeps draining while the agent sits out
    /// the delay, so in a congested system a delay mostly re-times the
    /// start only once it exceeds the backlog.
    fn adaptive_delay(
        &self,
        clusters: &[Cluster],
        job_idx: usize,
        now: TimePoint,
        waits: &mut Vec<f64>,
    ) -> Option<u32> {
        let market = self.config.market.as_ref()?;
        let job = &self.trace.jobs[job_idx];
        let agent = market.agent(job.user.0);
        if agent.elasticity <= 0.0 {
            return None;
        }
        let window = agent.slack_hours.min(market.max_delay_hours);
        if window == 0 {
            return None;
        }
        waits.clear();
        waits.extend((0..self.fleet.len()).map(|m| {
            let provisioned = self.provisioned_cores(m, job.cores);
            clusters[m]
                .estimated_wait(provisioned, job.user, now)
                .as_secs()
        }));
        let quote_at = |delay_s: f64| -> f64 {
            (0..self.fleet.len())
                .map(|m| {
                    let start = now
                        + green_units::TimeSpan::from_secs(delay_s + (waits[m] - delay_s).max(0.0));
                    self.posted_quote(m, job_idx, start)
                })
                .fold(f64::INFINITY, f64::min)
        };
        let now_cost = quote_at(0.0);
        let mut best: Option<(u32, f64)> = None;
        for delay in 1..=window {
            let cost = quote_at(delay as f64 * 3600.0);
            if cost < best.map(|(_, c)| c).unwrap_or(now_cost) {
                best = Some((delay, cost));
            }
        }
        let required = (market.shift_threshold / agent.elasticity).min(0.5);
        best.filter(|(_, c)| *c < now_cost * (1.0 - required))
            .map(|(d, _)| d)
    }

    /// The accounting context of a job on a machine, with the grid
    /// intensity read at `at`.
    fn charge_context(&self, machine: usize, job_idx: usize, at: TimePoint) -> ChargeContext {
        let job = &self.trace.jobs[job_idx];
        let spec = &self.fleet[machine].spec;
        let provisioned = self.provisioned_cores(machine, job.cores);
        let runtime = self.table.runtime(job, machine);
        let energy = self.table.energy(job, machine);
        ChargeContext::new(energy, runtime)
            .with_cores(job.cores)
            .with_provisioned(
                spec.tdp_per_core() * provisioned as f64,
                provisioned as f64 / spec.cores as f64,
            )
            .with_peak(spec.cpu.peak_per_thread)
            .with_carbon(
                self.intensity[machine].intensity_at(at),
                spec.carbon_rate(self.config.sim_year),
            )
            .with_pue(spec.facility.pue)
    }

    /// Runs the full workload to completion and collects metrics,
    /// allocating fresh state — the one-shot convenience form of
    /// [`run_in`](Simulator::run_in).
    pub fn run(&self) -> RunMetrics {
        self.run_in(&mut SimArena::new())
    }

    /// Runs the full workload to completion against `arena`-owned state.
    /// All simulation buffers (cluster queues, event calendar, job
    /// tables, outcome storage) are borrowed from the arena, so a caller
    /// sweeping many cells allocates once, not once per cell. Results
    /// are bit-for-bit identical to a fresh-state [`run`](Simulator::run).
    pub fn run_in(&self, arena: &mut SimArena) -> RunMetrics {
        self.run_in_obs(arena, &NoopRecorder)
    }

    /// [`run_in`](Simulator::run_in) with an observability recorder.
    /// Statically dispatched: with [`NoopRecorder`] (`R::ENABLED =
    /// false`) every clock read and counter emission compiles away and
    /// this *is* the uninstrumented loop. With a recording `R`, wall
    /// time is attributed per event to the `schedule` (arrival handling:
    /// shift quoting, policy choice, scheduling passes) and `attribute`
    /// (outcome construction: window-integrated carbon + charges)
    /// phases, with the loop remainder booked to `events`; the
    /// deterministic work counters (`events_drained`,
    /// `ready_user_merges`, `schedule_passes`) are emitted once at the
    /// end. Results are bit-for-bit identical either way.
    pub fn run_in_obs<R: Recorder>(&self, arena: &mut SimArena, obs: &R) -> RunMetrics {
        let n_machines = self.fleet.len();
        // Grow-only: after a larger fleet, a smaller one parks the tail
        // clusters (allocations intact) instead of dropping them, so
        // fleet-subset sweeps that alternate sizes keep every buffer.
        if arena.clusters.len() < n_machines {
            arena
                .clusters
                .resize_with(n_machines, || Cluster::new(0, 0));
        }
        let clusters = &mut arena.clusters[..n_machines];
        for (cluster, m) in clusters.iter_mut().zip(self.fleet) {
            if m.per_user {
                // One private node per user; the per-cluster user
                // constraint keeps each user inside their own node.
                let cores = m.spec.cores as u64 * self.config.users as u64;
                cluster.reset(cores, m.spec.cores);
            } else {
                let cores = m.spec.cores as u64 * m.nodes as u64;
                cluster.reset(cores, cores.min(u32::MAX as u64) as u32);
            }
            cluster.backfill_depth = self.config.backfill_depth;
            // Provisioning rounds every request up to the slice, so
            // the slice is the smallest start the scheduler must
            // consider (drives its saturated-cluster early exit).
            cluster.min_grain = m.spec.slice_cores;
        }

        let events = &mut arena.events;
        events.reset();
        for (idx, job) in self.trace.jobs.iter().enumerate() {
            events.push(job.arrival, EventKind::Arrival(idx));
        }

        let jobs = self.trace.jobs.len();
        debug_assert!(jobs < u32::MAX as usize, "job indices must fit u32");
        arena.started_at.clear();
        arena.started_at.resize(jobs, f64::NAN);
        let started_at = &mut arena.started_at;
        arena.finishes.clear();
        let finishes = &mut arena.finishes;
        let mut rejected = 0usize;
        let mut events_processed = 0usize;
        // GreedyShift bookkeeping: a job may be postponed at most once.
        arena.shifted.clear();
        arena.shifted.resize(jobs, false);
        let shifted = &mut arena.shifted;
        let started = &mut arena.started_buf;

        // Phase attribution (recording builds only): wall time inside
        // each arrival arm is `schedule`, outcome construction is
        // `attribute`, and the loop remainder (event-queue traffic) is
        // `events`. Laps accumulate in locals — zero atomic traffic on
        // the ~2.5 M events/s hot path — and flush once after the loop.
        let loop_watch = Stopwatch::<R>::start();
        let mut schedule_ns = 0u64;
        let mut attribute_ns = 0u64;

        while let Some(event) = events.pop() {
            let now = event.at;
            events_processed += 1;
            match event.kind {
                EventKind::Arrival(job_idx) => {
                    let arm_watch = Stopwatch::<R>::start();
                    // Temporal shifting: quote every whole-hour submission
                    // moment in the window and postpone if a cleaner hour
                    // is cheaper by enough. GreedyShift applies a uniform
                    // window and threshold; Adaptive lets each user's
                    // elasticity profile decide.
                    if !shifted[job_idx] {
                        let delay = match self.config.policy {
                            Policy::GreedyShift { max_delay_hours } => {
                                shifted[job_idx] = true;
                                self.best_submission_delay(job_idx, now, max_delay_hours, 0.01)
                            }
                            Policy::Adaptive => {
                                shifted[job_idx] = true;
                                self.adaptive_delay(clusters, job_idx, now, &mut arena.waits_buf)
                            }
                            _ => None,
                        };
                        if let Some(delay_h) = delay {
                            events.push(
                                now + green_units::TimeSpan::from_hours(delay_h as f64),
                                EventKind::Arrival(job_idx),
                            );
                            schedule_ns += arm_watch.elapsed_ns();
                            continue;
                        }
                    }
                    let job = &self.trace.jobs[job_idx];
                    let options = &mut arena.options_buf;
                    options.clear();
                    options.extend((0..n_machines).map(|m| self.option(clusters, m, job_idx, now)));
                    let Some(machine) = self.config.policy.choose(options) else {
                        rejected += 1;
                        schedule_ns += arm_watch.elapsed_ns();
                        continue;
                    };
                    let provisioned = self.provisioned_cores(machine, job.cores);
                    clusters[machine].submit(QueuedJob {
                        job: job_idx,
                        user: job.user,
                        cores: provisioned,
                        runtime: self.table.runtime(job, machine),
                        submitted: now,
                    });
                    started.clear();
                    clusters[machine].schedule_into(now, started);
                    for s in started.iter() {
                        started_at[s.job] = now.as_secs();
                        events.push(now + s.runtime, EventKind::Finish(machine, s.job));
                    }
                    schedule_ns += arm_watch.elapsed_ns();
                }
                EventKind::Finish(machine, job_idx) => {
                    clusters[machine].finish(job_idx);
                    // Stage the completion's scalars; the expensive
                    // attribution pass runs over the columns after the
                    // loop. `started_at[job]` is written exactly once
                    // (at start) so staging it now or reading it later
                    // is the same value.
                    finishes.push(
                        job_idx as u32,
                        machine as u32,
                        started_at[job_idx],
                        now.as_secs(),
                    );
                    let pass_watch = Stopwatch::<R>::start();
                    started.clear();
                    clusters[machine].schedule_into(now, started);
                    for s in started.iter() {
                        started_at[s.job] = now.as_secs();
                        events.push(now + s.runtime, EventKind::Finish(machine, s.job));
                    }
                    schedule_ns += pass_watch.elapsed_ns();
                }
            }
        }

        // Materialize the staged completion columns into outcome records
        // in log (= pop) order: one contiguous attribution pass over the
        // whole run instead of one cold detour per finish event.
        let outcome_watch = Stopwatch::<R>::start();
        let mut outcomes = std::mem::take(&mut arena.outcomes);
        outcomes.clear();
        outcomes.reserve(finishes.len());
        for i in 0..finishes.len() {
            outcomes.push(self.outcome(
                finishes.job[i] as usize,
                finishes.machine[i] as usize,
                finishes.start_s[i],
                TimePoint::from_secs(finishes.end_s[i]),
            ));
        }
        attribute_ns += outcome_watch.elapsed_ns();

        if R::ENABLED {
            let total_ns = loop_watch.elapsed_ns();
            obs.phase_ns(Phase::Schedule, schedule_ns);
            obs.phase_ns(Phase::Attribute, attribute_ns);
            obs.phase_ns(
                Phase::Events,
                total_ns.saturating_sub(schedule_ns + attribute_ns),
            );
            obs.add(Counter::EventsDrained, events_processed as u64);
            obs.add(
                Counter::ReadyUserMerges,
                clusters.iter().map(|c| c.merge_work).sum(),
            );
            obs.add(
                Counter::SchedulePasses,
                clusters.iter().map(|c| c.schedule_passes).sum(),
            );
        }

        RunMetrics {
            policy: self.config.policy.name(
                &self
                    .fleet
                    .iter()
                    .map(|m| m.spec.name.as_str())
                    .collect::<Vec<_>>(),
            ),
            outcomes,
            rejected,
            events: events_processed,
            release_work: clusters.iter().map(|c| c.release_work).sum(),
        }
    }

    fn outcome(&self, job_idx: usize, machine: usize, start_s: f64, end: TimePoint) -> JobOutcome {
        let job = &self.trace.jobs[job_idx];
        // Settled charges and attribution integrate the grid over the
        // job's actual execution window — `∫ I(t) dt` per Li et al.'s
        // per-job operational-carbon formulation — via the trace's O(1)
        // prefix-summed window mean. (Decision-time quotes above still
        // read the point intensity at the expected start: a scheduler
        // can't know a job's completed window before running it.)
        let start = TimePoint::from_secs(start_s);
        let mut ctx = self.charge_context(machine, job_idx, start);
        ctx.carbon_intensity = self.intensity[machine].window_mean(start, end);
        let charges = [
            MethodKind::Runtime.charge(&ctx).value(),
            MethodKind::Energy.charge(&ctx).value(),
            MethodKind::Peak.charge(&ctx).value(),
            MethodKind::eba().charge(&ctx).value(),
            MethodKind::Cba.charge(&ctx).value(),
        ];
        let footprint = green_carbon::attribute_job(
            ctx.facility_energy(),
            ctx.carbon_intensity,
            ctx.duration,
            ctx.carbon_rate,
            ctx.provisioned_share,
        );
        JobOutcome {
            job: job.id.0,
            user: job.user.0,
            machine: machine as u32,
            cores: job.cores,
            arrival_s: job.arrival.as_secs(),
            start_s,
            end_s: end.as_secs(),
            energy_kwh: ctx.energy.as_kwh(),
            charges,
            op_carbon_g: footprint.operational.as_grams(),
            attributed_g: footprint.total().as_grams(),
            work_core_hours: self.table.work_core_hours(job),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use green_machines::simulation_fleet;
    use green_perfmodel::{CrossMachinePredictor, MachineBehavior};
    use green_workload::TraceConfig;

    fn setup() -> (Trace, Vec<FleetMachine>, PlacementTable, Vec<HourlyTrace>) {
        let fleet = simulation_fleet();
        let behaviors: Vec<MachineBehavior> = fleet
            .iter()
            .map(|m| MachineBehavior::for_spec(&m.spec))
            .collect();
        let predictor = CrossMachinePredictor::train(behaviors, 2, 23);
        let trace = Trace::generate(&TraceConfig::small(23), &predictor);
        let table = PlacementTable::build(&trace, &fleet, &predictor);
        let intensity: Vec<HourlyTrace> = fleet
            .iter()
            .map(|m| m.spec.facility.region.trace(23, 90))
            .collect();
        (trace, fleet, table, intensity)
    }

    fn run(policy: Policy) -> RunMetrics {
        let (trace, fleet, table, intensity) = setup();
        let sim = Simulator::new(
            &trace,
            &fleet,
            &table,
            &intensity,
            SimConfig::new(policy, MethodKind::eba(), 24),
        );
        sim.run()
    }

    #[test]
    fn all_jobs_complete_under_greedy() {
        let m = run(Policy::Greedy);
        assert_eq!(m.outcomes.len() + m.rejected, 1_500);
        assert_eq!(m.rejected, 0, "every job fits somewhere");
        // Starts never precede arrivals.
        for o in &m.outcomes {
            assert!(o.start_s >= o.arrival_s - 1e-6);
            assert!(o.end_s > o.start_s);
        }
    }

    #[test]
    fn greedy_never_uses_theta_under_eba() {
        let m = run(Policy::Greedy);
        let dist = m.machine_distribution(4);
        assert_eq!(dist[3], 0, "Theta is never cheapest under EBA: {dist:?}");
    }

    #[test]
    fn fixed_policy_uses_single_machine() {
        let m = run(Policy::Fixed(2));
        let dist = m.machine_distribution(4);
        assert_eq!(dist[0], 0);
        assert_eq!(dist[1], 0);
        assert_eq!(dist[3], 0);
        assert!(dist[2] > 0);
    }

    #[test]
    fn energy_policy_uses_least_energy() {
        let energy = run(Policy::Energy);
        let runtime = run(Policy::Runtime);
        assert!(
            energy.total_energy_mwh() < runtime.total_energy_mwh(),
            "Energy {:.1} MWh vs Runtime {:.1} MWh",
            energy.total_energy_mwh(),
            runtime.total_energy_mwh()
        );
    }

    #[test]
    fn eft_no_slower_than_single_machine() {
        let eft = run(Policy::Eft);
        let theta = run(Policy::Fixed(3));
        assert!(eft.makespan_hours() <= theta.makespan_hours() * 1.05);
        assert!(eft.mean_wait_hours() <= theta.mean_wait_hours() + 1e-9);
    }

    #[test]
    fn deterministic_runs() {
        let a = run(Policy::Mixed);
        let b = run(Policy::Mixed);
        assert_eq!(a, b);
    }

    #[test]
    fn identity_market_changes_nothing() {
        let (trace, fleet, table, intensity) = setup();
        let baseline = Simulator::new(
            &trace,
            &fleet,
            &table,
            &intensity,
            SimConfig::new(Policy::Adaptive, MethodKind::eba(), 24),
        )
        .run();
        let with_market = Simulator::new(
            &trace,
            &fleet,
            &table,
            &intensity,
            SimConfig::new(Policy::Adaptive, MethodKind::eba(), 24)
                .with_market(crate::market::MarketInputs::identity(4)),
        )
        .run();
        // Flat prices + inelastic agents under EBA (time-invariant
        // charges, so expected-start quote anchoring is a no-op):
        // Adaptive must equal Greedy placements and outcomes bit for
        // bit (modulo the policy name).
        let greedy = run(Policy::Greedy);
        assert_eq!(baseline.outcomes, with_market.outcomes);
        assert_eq!(baseline.outcomes, greedy.outcomes);
    }

    #[test]
    fn adaptive_agents_shift_toward_cheap_hours() {
        use crate::market::{MarketAgent, MarketInputs, PriceTable};
        // An *uncongested* workload: temporal shifting can only re-time
        // actual starts (and therefore posted spend) when the fleet has
        // slack — on a saturated fleet jobs run back-to-back whatever
        // their submission hour.
        let fleet = simulation_fleet();
        let behaviors: Vec<MachineBehavior> = fleet
            .iter()
            .map(|m| MachineBehavior::for_spec(&m.spec))
            .collect();
        let predictor = CrossMachinePredictor::train(behaviors, 2, 23);
        let trace = Trace::generate(
            &TraceConfig {
                users: 24,
                unique_jobs: 300,
                duration: green_units::TimeSpan::from_days(8.0),
                max_runtime: green_units::TimeSpan::from_hours(12.0),
                seed: 23,
            },
            &predictor,
        );
        let table = PlacementTable::build(&trace, &fleet, &predictor);
        let intensity: Vec<HourlyTrace> = fleet
            .iter()
            .map(|m| m.spec.facility.region.trace(23, 90))
            .collect();
        // A strong diurnal price signal, identical on every machine:
        // hours 0–11 of each day are 3× as expensive as hours 12–23.
        let day: Vec<f64> = (0..24).map(|h| if h < 12 { 3.0 } else { 1.0 }).collect();
        let prices = std::sync::Arc::new(PriceTable::new(vec![day; 4]));
        let market = |elasticity: f64| MarketInputs {
            prices: std::sync::Arc::clone(&prices),
            agents: std::sync::Arc::new(vec![MarketAgent {
                elasticity,
                slack_hours: 12,
            }]),
            max_delay_hours: 24,
            shift_threshold: 0.02,
        };
        let run_with = |elasticity: f64| {
            Simulator::new(
                &trace,
                &fleet,
                &table,
                &intensity,
                SimConfig::new(Policy::Adaptive, MethodKind::eba(), 24)
                    .with_market(market(elasticity)),
            )
            .run()
        };
        let rigid = run_with(0.0);
        let elastic = run_with(2.0);
        let shifted_starts = |m: &RunMetrics| {
            m.outcomes
                .iter()
                .filter(|o| o.start_s > o.arrival_s + 1.0)
                .count()
        };
        assert!(
            shifted_starts(&elastic) > shifted_starts(&rigid),
            "elastic agents should delay submissions toward cheap hours"
        );
        // Spending at posted prices drops for the elastic population.
        let posted = |m: &RunMetrics| -> f64 {
            m.outcomes
                .iter()
                .map(|o| {
                    o.charges[crate::metrics::cost::EBA]
                        * prices.multiplier_at(
                            o.machine as usize,
                            green_units::TimePoint::from_secs(o.start_s),
                        )
                })
                .sum()
        };
        assert!(
            posted(&elastic) < posted(&rigid),
            "elastic posted spend {:.3e} should undercut rigid {:.3e}",
            posted(&elastic),
            posted(&rigid)
        );
    }

    #[test]
    fn per_user_desktop_capacity_scales_with_users() {
        let (trace, fleet, table, intensity) = setup();
        let sim = Simulator::new(
            &trace,
            &fleet,
            &table,
            &intensity,
            SimConfig::new(Policy::Fixed(1), MethodKind::eba(), 24),
        );
        let m = sim.run();
        // Only Desktop-sized jobs complete; larger ones are rejected.
        let over = trace.jobs.iter().filter(|j| j.cores > 16).count();
        assert_eq!(m.rejected, over);
        let dist = m.machine_distribution(4);
        assert_eq!(dist[1], trace.len() - over);
    }
}
