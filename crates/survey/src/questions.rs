//! The survey's question vocabulary.

use serde::{Deserialize, Serialize};

/// Respondent location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// Europe.
    Europe,
    /// North America.
    NorthAmerica,
    /// Oceania.
    Oceania,
    /// China.
    China,
    /// Declined to share.
    Undisclosed,
}

/// Respondent career stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CareerStage {
    /// Graduate student.
    GradStudent,
    /// Early-career researcher/engineer.
    EarlyCareer,
    /// Senior researcher/engineer.
    Senior,
    /// Not reported.
    Unreported,
}

/// The sustainability metrics of Figure 1 ("are you aware of how the HPC
/// resources you use perform on the following metrics?").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SustainabilityMetric {
    /// The Green500 ranking.
    Green500,
    /// SPEC Server Efficiency Rating Tool.
    SpecSert,
    /// Grid carbon intensity at the facility.
    CarbonIntensity,
    /// Power usage effectiveness of the facility.
    Pue,
}

impl SustainabilityMetric {
    /// Figure 1's metric order.
    pub const ALL: [SustainabilityMetric; 4] = [
        SustainabilityMetric::Green500,
        SustainabilityMetric::SpecSert,
        SustainabilityMetric::CarbonIntensity,
        SustainabilityMetric::Pue,
    ];

    /// Axis label.
    pub fn label(self) -> &'static str {
        match self {
            SustainabilityMetric::Green500 => "Green500",
            SustainabilityMetric::SpecSert => "SPEC SERT",
            SustainabilityMetric::CarbonIntensity => "Carbon Intensity",
            SustainabilityMetric::Pue => "PUE",
        }
    }
}

/// Answer to the Figure 1 question.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricAwareness {
    /// Knows how their machines perform on the metric.
    Yes,
    /// Does not.
    No,
    /// Considers the metric inapplicable to them.
    NotApplicable,
}

/// The machine-choice factors of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecisionFactor {
    /// Hardware availability (accelerators, memory).
    Hardware,
    /// Queue waiting times.
    Queue,
    /// Machine performance.
    Performance,
    /// Funding / allocation availability.
    Funding,
    /// Software environment.
    Software,
    /// Ease of use.
    EaseOfUse,
    /// Prior experience with the machine.
    Experience,
    /// Energy efficiency.
    Energy,
}

impl DecisionFactor {
    /// Figure 2's factor order.
    pub const ALL: [DecisionFactor; 8] = [
        DecisionFactor::Hardware,
        DecisionFactor::Queue,
        DecisionFactor::Performance,
        DecisionFactor::Funding,
        DecisionFactor::Software,
        DecisionFactor::EaseOfUse,
        DecisionFactor::Experience,
        DecisionFactor::Energy,
    ];

    /// Axis label.
    pub fn label(self) -> &'static str {
        match self {
            DecisionFactor::Hardware => "Hardware",
            DecisionFactor::Queue => "Queue",
            DecisionFactor::Performance => "Performance",
            DecisionFactor::Funding => "Funding",
            DecisionFactor::Software => "Software",
            DecisionFactor::EaseOfUse => "Ease of Use",
            DecisionFactor::Experience => "Experience",
            DecisionFactor::Energy => "Energy",
        }
    }
}

/// Three-point importance scale of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Importance {
    /// "1 (Not Important)".
    NotImportant,
    /// "2".
    Somewhat,
    /// "3 (Very Important)".
    VeryImportant,
}

impl Importance {
    /// Scale order.
    pub const ALL: [Importance; 3] = [
        Importance::NotImportant,
        Importance::Somewhat,
        Importance::VeryImportant,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_sizes() {
        assert_eq!(SustainabilityMetric::ALL.len(), 4);
        assert_eq!(DecisionFactor::ALL.len(), 8);
        assert_eq!(Importance::ALL.len(), 3);
        assert_eq!(DecisionFactor::Energy.label(), "Energy");
    }
}
