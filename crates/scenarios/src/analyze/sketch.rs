//! A fixed-size, fully deterministic streaming quantile sketch.
//!
//! Percentiles over survey-scale groups cannot buffer every value, and
//! the repository's determinism contract rules out randomized sketches
//! (GK tuning aside, a reservoir or KLL coin-flip would make the report
//! depend on RNG state). This sketch is the deterministic middle
//! ground: values are held exactly until the buffer fills, then the
//! sorted buffer is *compacted* — adjacent pairs merge into one
//! survivor carrying both weights, alternating between keeping the
//! lower and the upper element of each pair so the rank bias cancels
//! across rounds. Every step is a pure function of the arrival order,
//! so two runs that fold the same rows in the same order produce
//! bit-identical quantiles — the property the shard-count-invariance
//! tests pin down.
//!
//! Accuracy: after `k` compactions each survivor stands in for at most
//! `2^k` originals, so a rank query is off by at most the survivor
//! spacing — ~`n / capacity` ranks, under 0.05 % of the distribution at
//! the default [`super::EXACT_QUANTILE_ROWS`] capacity. Exact answers
//! below the capacity are the common case: per-group row counts in real
//! sweeps rarely exceed it, and [`super::engine`] only migrates a group
//! into sketch mode once it crosses the threshold.

/// One weighted survivor: `value` standing in for `weight` originals.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    value: f64,
    weight: u64,
}

/// A bounded-memory quantile summary with deterministic compaction.
///
/// `push` values in stream order, then read [`QuantileSketch::quantile`]
/// (nearest-rank semantics; exact while the stream still fits the
/// buffer).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// Maximum entries held; a push at capacity triggers a compaction.
    cap: usize,
    /// Weighted survivors, in arrival order (sorted only at compaction
    /// and query time).
    entries: Vec<Entry>,
    /// Compactions performed so far; parity picks which half of each
    /// sorted pair survives, so the rank bias alternates sign.
    rounds: u64,
}

impl QuantileSketch {
    /// An empty sketch holding at most `cap` entries (`cap >= 2`).
    pub fn new(cap: usize) -> QuantileSketch {
        QuantileSketch {
            cap: cap.max(2),
            entries: Vec::new(),
            rounds: 0,
        }
    }

    /// Total weight absorbed (the number of `push`es).
    pub fn count(&self) -> u64 {
        self.entries.iter().map(|e| e.weight).sum()
    }

    /// Whether the sketch has compacted (quantiles are approximate once
    /// it has).
    pub fn compacted(&self) -> bool {
        self.rounds > 0
    }

    /// Absorbs one value.
    pub fn push(&mut self, value: f64) {
        if self.entries.len() >= self.cap {
            self.compact();
        }
        self.entries.push(Entry { value, weight: 1 });
    }

    /// Halves the buffer: sort by value (ties broken by arrival order —
    /// the sort is stable), merge adjacent pairs into one survivor
    /// carrying the pair's combined weight. Round parity alternates
    /// whether the lower or the upper element survives.
    fn compact(&mut self) {
        self.entries.sort_by(|a, b| a.value.total_cmp(&b.value));
        let keep_upper = self.rounds % 2 == 1;
        let mut compacted = Vec::with_capacity(self.entries.len() / 2 + 1);
        let mut pairs = self.entries.chunks_exact(2);
        for pair in &mut pairs {
            let survivor = if keep_upper { pair[1] } else { pair[0] };
            compacted.push(Entry {
                value: survivor.value,
                weight: pair[0].weight + pair[1].weight,
            });
        }
        compacted.extend_from_slice(pairs.remainder());
        self.entries = compacted;
        self.rounds += 1;
    }

    /// The nearest-rank quantile `q` in `[0, 1]`: the smallest value
    /// whose cumulative weight reaches `ceil(q × total)`. Returns `None`
    /// for an empty sketch. Exact until the first compaction.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.entries.is_empty() {
            return None;
        }
        let mut sorted = self.entries.clone();
        sorted.sort_by(|a, b| a.value.total_cmp(&b.value));
        let total = sorted.iter().map(|e| e.weight).sum::<u64>();
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0;
        for entry in &sorted {
            cumulative += entry.weight;
            if cumulative >= target {
                return Some(entry.value);
            }
        }
        sorted.last().map(|e| e.value)
    }
}

/// Exact nearest-rank quantile of already-collected values: the
/// reference the sketch degrades from, and the path the engine uses for
/// groups below the exact-row threshold. `values` need not be sorted.
pub fn exact_quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    Some(sorted[rank.min(sorted.len()) - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut sketch = QuantileSketch::new(64);
        for v in [5.0, 1.0, 9.0, 3.0, 7.0] {
            sketch.push(v);
        }
        assert!(!sketch.compacted());
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(
                sketch.quantile(q),
                exact_quantile(&[5.0, 1.0, 9.0, 3.0, 7.0], q),
                "q={q}"
            );
        }
    }

    #[test]
    fn deterministic_under_replay() {
        let values: Vec<f64> = (0..10_000).map(|i| ((i * 37) % 1000) as f64).collect();
        let run = |vals: &[f64]| {
            let mut s = QuantileSketch::new(128);
            for &v in vals {
                s.push(v);
            }
            (s.quantile(0.5), s.quantile(0.9), s.quantile(0.99))
        };
        assert_eq!(run(&values), run(&values));
    }

    #[test]
    fn compacted_quantiles_stay_close() {
        let n = 50_000;
        let mut sketch = QuantileSketch::new(1024);
        for i in 0..n {
            // A permuted ramp: every value 0..n exactly once.
            sketch.push(((i * 7919) % n) as f64);
        }
        assert!(sketch.compacted());
        assert_eq!(sketch.count(), n as u64);
        for (q, expected) in [(0.5, 0.5), (0.9, 0.9), (0.99, 0.99)] {
            let got = sketch.quantile(q).unwrap() / n as f64;
            assert!(
                (got - expected).abs() < 0.05,
                "q={q}: got {got}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn exact_quantile_nearest_rank_semantics() {
        let values = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(exact_quantile(&values, 0.5), Some(20.0));
        assert_eq!(exact_quantile(&values, 0.75), Some(30.0));
        assert_eq!(exact_quantile(&values, 1.0), Some(40.0));
        assert_eq!(exact_quantile(&[], 0.5), None);
    }
}
