//! Synthetic HPC job traces with the statistical shape of the Patel et al.
//! per-job energy dataset (IPDPS'20), which the paper's simulation studies
//! replay.
//!
//! The real dataset is 71,190 jobs (after discarding rows without energy)
//! from two production clusters, doubled to 142,380 by repeating each
//! execution. Key properties the simulator depends on, all reproduced here:
//!
//! * jobs belong to **users**, with a heavy-tailed jobs-per-user
//!   distribution;
//! * a user's jobs with the same requested resources are **repetitions of
//!   the same application** — they share one counter signature (the paper
//!   exploits exactly this to infer cross-platform characteristics);
//! * requested cores are small-job dominated: ≈17 % of jobs need more
//!   cores than the 16-core Desktop offers;
//! * runtimes are log-normal with a long tail, capped by walltime limits;
//! * per-job energy on the reference cluster (IC) follows from the job's
//!   compute intensity via the ground-truth behaviour model, with
//!   measurement noise.

pub mod job;
pub mod stats;
pub mod trace;

pub use job::{Job, JobId, UserId};
pub use stats::TraceStats;
pub use trace::{Trace, TraceConfig};
