//! The `--threads` byte-identity contract, pinned at the artifact
//! level: a shard run on N workers must leave **exactly** the bytes a
//! serial run leaves — fragment CSV, manifest checkpoint, the
//! deterministic projection of the `.progress` sidecar, and the merge
//! built from them — for every thread count, and it must keep doing so
//! through injected crashes (a torn in-order commit, a mid-run kill)
//! followed by a resume on *either* execution shape.
//!
//! This is the output-level half of the parallel determinism story; the
//! scheduling-level half (in-order exact-cover commits) lives in
//! `tests/reorder_props.rs`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use green_chaos::ChaosRegistry;
use green_obs::NoopRecorder;
use green_scenarios::{
    manifest_path, merge_shards, progress_path, run_shard, run_shard_chaos, MethodSpec, PolicySpec,
    ProgressRecord, ShardAssignment, ShardJob, ShardManifest, Sweep, SweepRunner,
};

/// Thread counts under test. 1 is the golden reference, 2 exercises the
/// minimal race, 8 oversubscribes every CI box we run on.
const THREADS: [usize; 3] = [1, 2, 8];

/// A 6-configuration × 3-replicate grid: enough cells (18) that eight
/// workers genuinely race the reorder buffer, small enough to run three
/// times per test.
fn grid() -> Sweep {
    let mut sweep = Sweep::new("parallel-golden");
    sweep.policies = vec![PolicySpec::Greedy, PolicySpec::Energy, PolicySpec::Eft];
    sweep.methods = vec![MethodSpec::Eba, MethodSpec::Cba];
    sweep.seeds = vec![1, 2, 3];
    sweep
}

struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("green-parallel-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }

    fn path(&self, file: &str) -> PathBuf {
        self.0.join(file)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn job<'a>(
    sweep: &'a Sweep,
    csv: &'a Path,
    cells: std::ops::Range<usize>,
    resume: bool,
) -> ShardJob<'a> {
    ShardJob {
        sweep,
        filter: None,
        assignment: ShardAssignment::Cells(cells),
        csv,
        resume,
        checkpoint_every: 1,
        columnar: false,
    }
}

/// The deterministic projection of a progress record: everything except
/// the wall-clock-derived fields (elapsed, rate, ETA, RSS, phase
/// timings), which legitimately vary run to run and thread to thread.
type ProgressProjection = (String, String, usize, usize, bool, Option<String>, bool);

fn progress_projection(csv: &Path) -> Vec<ProgressProjection> {
    let text = std::fs::read_to_string(progress_path(csv)).expect("progress sidecar");
    ProgressRecord::parse_sidecar(&text)
        .expect("sidecar parses strictly")
        .into_iter()
        .map(|r| {
            (
                r.sweep,
                r.shard,
                r.rows,
                r.expected_rows,
                r.failed,
                r.error,
                r.complete,
            )
        })
        .collect()
}

/// Runs the full 18-cell grid as two fragments on `threads` workers
/// into `scratch`, returning the two fragment paths.
fn run_fragments(sweep: &Sweep, scratch: &Scratch, threads: usize) -> [PathBuf; 2] {
    let runner = SweepRunner::new(threads);
    let frag0 = scratch.path("frag0.csv");
    let frag1 = scratch.path("frag1.csv");
    run_shard(&runner, &job(sweep, &frag0, 0..9, false), None).expect("fragment 0");
    run_shard(&runner, &job(sweep, &frag1, 9..18, false), None).expect("fragment 1");
    [frag0, frag1]
}

/// Fragment bytes, manifest bytes (spec hash, row/byte counts, content
/// hash — the whole checkpoint), and the progress projection of a
/// parallel run are identical to the serial run's, for every thread
/// count.
#[test]
fn every_thread_count_leaves_identical_artifacts() {
    let sweep = grid();
    let serial = Scratch::new("serial");
    let golden = run_fragments(&sweep, &serial, 1);
    let golden_bytes: Vec<Vec<u8>> = golden
        .iter()
        .map(|p| std::fs::read(p).expect("fragment"))
        .collect();
    let golden_manifests: Vec<Vec<u8>> = golden
        .iter()
        .map(|p| std::fs::read(manifest_path(p)).expect("manifest"))
        .collect();
    let golden_progress: Vec<_> = golden.iter().map(|p| progress_projection(p)).collect();

    // The golden fragments themselves must be complete and verified.
    for path in &golden {
        assert!(ShardManifest::load(path).expect("manifest").complete);
    }

    for threads in THREADS {
        let scratch = Scratch::new(&format!("t{threads}"));
        let fragments = run_fragments(&sweep, &scratch, threads);
        for (i, path) in fragments.iter().enumerate() {
            assert_eq!(
                std::fs::read(path).expect("fragment"),
                golden_bytes[i],
                "threads={threads}: fragment {i} bytes diverged from serial"
            );
            assert_eq!(
                std::fs::read(manifest_path(path)).expect("manifest"),
                golden_manifests[i],
                "threads={threads}: manifest {i} diverged from serial"
            );
            assert_eq!(
                progress_projection(path),
                golden_progress[i],
                "threads={threads}: progress projection {i} diverged from serial"
            );
        }
    }
}

/// A merge over fragments produced by an 8-thread run is byte-identical
/// to the merge over serial fragments — parallelism never leaks through
/// the whole artifact pipeline.
#[test]
fn merged_output_is_identical_across_thread_counts() {
    let sweep = grid();
    let serial = Scratch::new("merge-serial");
    let golden_frags = run_fragments(&sweep, &serial, 1);
    let golden_out = serial.path("merged.csv");
    merge_shards(&golden_frags, &golden_out, false).expect("serial merge");
    let golden = std::fs::read(&golden_out).expect("merged bytes");

    let parallel = Scratch::new("merge-t8");
    let frags = run_fragments(&sweep, &parallel, 8);
    let out = parallel.path("merged.csv");
    merge_shards(&frags, &out, false).expect("parallel merge");
    assert_eq!(
        std::fs::read(&out).expect("merged bytes"),
        golden,
        "merge over 8-thread fragments diverged from the serial merge"
    );
}

/// Crashes a shard run on `threads` workers with `spec` armed and
/// asserts the crash actually fired by unwinding.
fn crash(sweep: &Sweep, csv: &Path, threads: usize, spec: &str) {
    let registry = ChaosRegistry::from_spec(spec).expect("spec compiles");
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        run_shard_chaos(
            &SweepRunner::new(threads),
            &job(sweep, csv, 0..9, false),
            None,
            &NoopRecorder,
            &registry,
        )
    }));
    assert!(
        outcome.is_err(),
        "`{spec}` did not fire on {threads} threads"
    );
}

/// Torn in-order commit under 8 racing workers: the partial row lands
/// past the last checkpoint, the terminal progress record says
/// `failed`, and a resume — parallel *or* serial — truncates the tail
/// and reproduces the serial golden bytes.
#[test]
fn torn_parallel_commit_resumes_to_serial_bytes() {
    let sweep = grid();
    let serial = Scratch::new("torn-serial");
    let golden = std::fs::read(&run_fragments(&sweep, &serial, 1)[0]).expect("golden");

    for resume_threads in [8, 1] {
        let scratch = Scratch::new(&format!("torn-resume-t{resume_threads}"));
        let csv = scratch.path("frag0.csv");
        crash(&sweep, &csv, 8, "parallel_commit=torn:13@hit:2");
        let last = progress_projection(&csv)
            .pop()
            .expect("terminal progress record");
        assert!(last.4, "the terminal progress record must say failed");
        run_shard(
            &SweepRunner::new(resume_threads),
            &job(&sweep, &csv, 0..9, true),
            None,
        )
        .expect("resume completes");
        assert_eq!(
            std::fs::read(&csv).expect("fragment"),
            golden,
            "resume on {resume_threads} threads diverged from the serial golden"
        );
        assert!(ShardManifest::load(&csv).expect("manifest").complete);
    }
}

/// A mid-run kill (injected panic at the in-order commit, no torn
/// bytes) under 8 workers: the on-disk checkpoint stays at the last
/// full row, and an 8-thread resume reproduces the serial golden.
#[test]
fn mid_run_kill_resumes_to_serial_bytes() {
    let sweep = grid();
    let serial = Scratch::new("kill-serial");
    let golden = std::fs::read(&run_fragments(&sweep, &serial, 1)[0]).expect("golden");

    let scratch = Scratch::new("kill");
    let csv = scratch.path("frag0.csv");
    crash(&sweep, &csv, 8, "parallel_commit=panic@hit:2");
    // The kill is clean at the row boundary: whatever made it to disk
    // verifies against its own manifest (no torn tail to truncate).
    let manifest = ShardManifest::load(&csv).expect("manifest survives the kill");
    assert!(!manifest.complete, "the kill must interrupt the shard");
    run_shard(&SweepRunner::new(8), &job(&sweep, &csv, 0..9, true), None)
        .expect("parallel resume completes");
    assert_eq!(
        std::fs::read(&csv).expect("fragment"),
        golden,
        "parallel resume after a kill diverged from the serial golden"
    );
}
