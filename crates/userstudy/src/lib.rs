//! The scheduling-game user study (Section 6).
//!
//! Participants play a web game: schedule a stream of jobs onto four
//! machines before time and allocation run out. Three treatments:
//!
//! * **V1** — cost ∝ core-time, no energy shown (status quo);
//! * **V2** — same cost, but per-job energy is displayed;
//! * **V3** — cost follows the EBA formula.
//!
//! This crate implements the game itself ([`game`], exactly the mechanics
//! of Figure 8), a population of **behavioral agents** standing in for
//! the 90 human participants ([`agent`]), the study harness with the
//! paper's discard rules ([`study`]) and the analysis that regenerates
//! Figures 9 and 10 ([`analysis`]).
//!
//! The agents are deliberately *not* programmed to care about energy:
//! they are heterogeneous cost/time/priority optimizers. The paper's
//! headline result — information alone (V2) changes nothing, while
//! linking price to energy (V3) cuts energy ≈40 % — then *emerges* from
//! the treatment: under V1/V2 the cheap machines are the fast, hungry
//! ones; under V3 the cheap machines are the efficient ones.

pub mod agent;
pub mod analysis;
pub mod game;
pub mod jobs;
pub mod render;
pub mod study;

pub use agent::AgentProfile;
pub use analysis::{StudyAnalysis, VersionSummary};
pub use game::{Game, GameError, JobView, Version};
pub use jobs::{GameJob, Priority};
pub use render::render;
pub use study::{GameRecord, Study, StudyConfig};
