//! Shim package: exposes the repository-root `tests/` (cross-crate
//! integration tests) and `examples/` (runnable binaries) to cargo via
//! path-redirected targets. See the `[[test]]` and `[[example]]` entries
//! in this crate's manifest.
