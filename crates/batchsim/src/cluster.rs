//! Per-cluster scheduling: FCFS with EASY-style backfilling over a core
//! pool, at slice granularity, with the paper's one-running-job-per-user
//! constraint.

use green_units::{TimePoint, TimeSpan};
use green_workload::UserId;
use std::collections::{HashMap, VecDeque};

/// A job waiting in a cluster queue.
#[derive(Debug, Clone, Copy)]
pub struct QueuedJob {
    /// Index into the workload.
    pub job: usize,
    /// Submitting user.
    pub user: UserId,
    /// Provisioned cores (after slice rounding).
    pub cores: u32,
    /// Predicted runtime on this cluster (used for backfill reservations;
    /// the simulator treats predictions as exact).
    pub runtime: TimeSpan,
    /// Submission time.
    pub submitted: TimePoint,
}

/// A job currently executing.
#[derive(Debug, Clone, Copy)]
struct RunningJob {
    user: UserId,
    cores: u32,
    ends: TimePoint,
}

/// Default backfill scan depth past the blocked head. Bounding the scan
/// keeps worst-case scheduling cost linear for the single-machine
/// policies whose queues grow into the tens of thousands.
pub const DEFAULT_BACKFILL_DEPTH: usize = 256;

/// One cluster's scheduling state.
#[derive(Debug)]
pub struct Cluster {
    /// Total schedulable cores (nodes × cores per node).
    pub total_cores: u64,
    /// Cores currently free.
    pub free_cores: u64,
    /// Largest single job the cluster accepts, in cores.
    pub max_job_cores: u32,
    /// How many queue entries past the blocked head the backfill pass
    /// may inspect. Zero disables backfilling (pure FCFS) — used by the
    /// scheduling ablation bench.
    pub backfill_depth: usize,
    queue: VecDeque<QueuedJob>,
    running: HashMap<usize, RunningJob>,
    users_running: HashMap<UserId, u32>,
    /// Sum of queued core-seconds (wait estimator state).
    queued_core_seconds: f64,
}

impl Cluster {
    /// Builds a cluster with the given capacity.
    pub fn new(total_cores: u64, max_job_cores: u32) -> Self {
        Cluster {
            total_cores,
            free_cores: total_cores,
            max_job_cores,
            backfill_depth: DEFAULT_BACKFILL_DEPTH,
            queue: VecDeque::new(),
            running: HashMap::new(),
            users_running: HashMap::new(),
            queued_core_seconds: 0.0,
        }
    }

    /// True when `cores` fits the cluster at all.
    pub fn eligible(&self, cores: u32) -> bool {
        cores <= self.max_job_cores && cores as u64 <= self.total_cores
    }

    /// Number of queued jobs.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Number of running jobs.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Estimated wait for a newly submitted job: zero when it could start
    /// immediately, otherwise the cluster's backlog drained at full
    /// capacity (an M/G/c-style estimate — the paper's EFT policy only
    /// needs a ranking signal, not exact waits).
    pub fn estimated_wait(&self, cores: u32, user: UserId, now: TimePoint) -> TimeSpan {
        let user_busy = self.users_running.get(&user).copied().unwrap_or(0) > 0;
        if !user_busy && self.queue.is_empty() && cores as u64 <= self.free_cores {
            return TimeSpan::ZERO;
        }
        let running_remaining: f64 = self
            .running
            .values()
            .map(|r| (r.ends - now).as_secs().max(0.0) * r.cores as f64)
            .sum();
        let backlog = running_remaining + self.queued_core_seconds;
        TimeSpan::from_secs(backlog / self.total_cores as f64)
    }

    /// Enqueues a job.
    pub fn submit(&mut self, job: QueuedJob) {
        self.queued_core_seconds += job.runtime.as_secs() * job.cores as f64;
        self.queue.push_back(job);
    }

    /// Marks a job finished and frees its cores.
    pub fn finish(&mut self, job: usize) {
        let r = self
            .running
            .remove(&job)
            .expect("finish event for a job not running here");
        self.free_cores += r.cores as u64;
        if let Some(n) = self.users_running.get_mut(&r.user) {
            *n -= 1;
            if *n == 0 {
                self.users_running.remove(&r.user);
            }
        }
    }

    /// Runs one scheduling pass at time `now`; returns the jobs started.
    ///
    /// Policy: scan from the head. Jobs blocked only by the user
    /// constraint are skipped (they delay nobody but their owner). The
    /// first capacity-blocked job becomes the *reserved head*: its
    /// earliest start is computed from running-job end times, and later
    /// queue entries may backfill only if they cannot delay that start.
    pub fn schedule(&mut self, now: TimePoint) -> Vec<QueuedJob> {
        let mut started = Vec::new();
        let mut reservation: Option<(TimePoint, u64)> = None; // (head start, cores free then)
        let mut scanned_past_head = 0usize;
        let mut idx = 0;
        while idx < self.queue.len() {
            let job = self.queue[idx];
            let user_blocked = self.users_running.get(&job.user).copied().unwrap_or(0) > 0;
            if user_blocked {
                idx += 1;
                continue;
            }
            let fits_now = job.cores as u64 <= self.free_cores;
            match (&mut reservation, fits_now) {
                (None, true) => {
                    // FCFS start.
                    self.start(job, now);
                    self.queue.remove(idx);
                    started.push(job);
                    // Restart the scan state: capacity changed.
                    continue;
                }
                (None, false) => {
                    // This job reserves the machine.
                    reservation = Some(self.earliest_fit(job.cores, now));
                    idx += 1;
                }
                (Some((head_start, free_at_head)), true) => {
                    scanned_past_head += 1;
                    if scanned_past_head > self.backfill_depth {
                        break;
                    }
                    // EASY condition: either the backfill job ends before
                    // the head could start, or the head still fits at its
                    // reserved time with this job running.
                    let ends_before_head = now + job.runtime <= *head_start;
                    let head_still_fits = *free_at_head >= job.cores as u64;
                    if ends_before_head || head_still_fits {
                        if !ends_before_head {
                            *free_at_head -= job.cores as u64;
                        }
                        self.start(job, now);
                        self.queue.remove(idx);
                        started.push(job);
                        continue;
                    }
                    idx += 1;
                }
                (Some(_), false) => {
                    scanned_past_head += 1;
                    if scanned_past_head > self.backfill_depth {
                        break;
                    }
                    idx += 1;
                }
            }
        }
        started
    }

    fn start(&mut self, job: QueuedJob, now: TimePoint) {
        debug_assert!(job.cores as u64 <= self.free_cores);
        self.free_cores -= job.cores as u64;
        self.queued_core_seconds -= job.runtime.as_secs() * job.cores as f64;
        if self.queued_core_seconds < 0.0 {
            self.queued_core_seconds = 0.0;
        }
        *self.users_running.entry(job.user).or_insert(0) += 1;
        self.running.insert(
            job.job,
            RunningJob {
                user: job.user,
                cores: job.cores,
                ends: now + job.runtime,
            },
        );
    }

    /// Earliest time `cores` become free, and how many cores will be free
    /// then (after the release), based on running-job end times. The
    /// "head still fits" budget excludes the head's own cores: backfill
    /// jobs may consume only the surplus above the head's requirement.
    fn earliest_fit(&self, cores: u32, now: TimePoint) -> (TimePoint, u64) {
        let mut releases: Vec<(TimePoint, u32)> =
            self.running.values().map(|r| (r.ends, r.cores)).collect();
        releases.sort_by(|a, b| a.0.as_secs().total_cmp(&b.0.as_secs()));
        let mut free = self.free_cores;
        let mut when = now;
        for (t, c) in releases {
            if free >= cores as u64 {
                break;
            }
            free += c as u64;
            when = t;
        }
        // Surplus after the head starts at `when`.
        (when, free.saturating_sub(cores as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qj(job: usize, user: u32, cores: u32, runtime_s: f64, t: f64) -> QueuedJob {
        QueuedJob {
            job,
            user: UserId(user),
            cores,
            runtime: TimeSpan::from_secs(runtime_s),
            submitted: TimePoint::from_secs(t),
        }
    }

    #[test]
    fn fcfs_starts_in_order() {
        let mut c = Cluster::new(100, 100);
        c.submit(qj(0, 0, 40, 100.0, 0.0));
        c.submit(qj(1, 1, 40, 100.0, 0.0));
        c.submit(qj(2, 2, 40, 100.0, 0.0));
        let started = c.schedule(TimePoint::EPOCH);
        // Two fit (80 ≤ 100), the third (would be 120) must wait.
        assert_eq!(started.len(), 2);
        assert_eq!(started[0].job, 0);
        assert_eq!(started[1].job, 1);
        assert_eq!(c.free_cores, 20);
        assert_eq!(c.queue_len(), 1);
    }

    #[test]
    fn backfill_does_not_delay_head() {
        let mut c = Cluster::new(100, 100);
        // Long job holding 60 cores until t=1000; 40 remain free.
        c.submit(qj(0, 0, 60, 1000.0, 0.0));
        c.schedule(TimePoint::EPOCH);
        // Head needs 80 cores: can start only at t=1000 (surplus then: 20).
        c.submit(qj(1, 1, 80, 500.0, 1.0));
        // Short job (20 cores, ends ≈t=504 < 1000): backfills harmlessly.
        c.submit(qj(2, 2, 20, 499.0, 2.0));
        // Long job (20 cores, 5000 s): overlaps the head's start but fits
        // in the 20-core surplus beyond the head's 80 — allowed.
        c.submit(qj(3, 3, 20, 5000.0, 3.0));
        // Another long 20-core job would eat into the head's reservation
        // (surplus exhausted) and no cores are free now anyway — waits.
        c.submit(qj(4, 4, 20, 5000.0, 4.0));
        let started = c.schedule(TimePoint::from_secs(5.0));
        let ids: Vec<usize> = started.iter().map(|s| s.job).collect();
        assert_eq!(ids, vec![2, 3]);
        assert_eq!(c.queue_len(), 2);
    }

    #[test]
    fn user_constraint_serializes_per_cluster() {
        let mut c = Cluster::new(100, 100);
        c.submit(qj(0, 7, 10, 100.0, 0.0));
        c.submit(qj(1, 7, 10, 100.0, 0.0));
        let started = c.schedule(TimePoint::EPOCH);
        assert_eq!(started.len(), 1, "same user must not run twice at once");
        // But another user is not blocked by it.
        c.submit(qj(2, 8, 10, 100.0, 0.0));
        let started = c.schedule(TimePoint::EPOCH);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].user, UserId(8));
        // After the first finishes, the second of user 7 can go.
        c.finish(0);
        let started = c.schedule(TimePoint::from_secs(100.0));
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job, 1);
    }

    #[test]
    fn finish_releases_cores() {
        let mut c = Cluster::new(50, 50);
        c.submit(qj(0, 0, 50, 10.0, 0.0));
        c.schedule(TimePoint::EPOCH);
        assert_eq!(c.free_cores, 0);
        c.finish(0);
        assert_eq!(c.free_cores, 50);
        assert_eq!(c.running_len(), 0);
    }

    #[test]
    fn wait_estimate_zero_when_idle() {
        let mut c = Cluster::new(100, 100);
        assert_eq!(
            c.estimated_wait(10, UserId(0), TimePoint::EPOCH).as_secs(),
            0.0
        );
        c.submit(qj(0, 0, 100, 1000.0, 0.0));
        c.schedule(TimePoint::EPOCH);
        // Cluster saturated: a new job sees a positive backlog.
        let w = c.estimated_wait(10, UserId(1), TimePoint::EPOCH);
        assert!(w.as_secs() > 0.0);
        // The same user as the running job is always positive too.
        let w_same = c.estimated_wait(10, UserId(0), TimePoint::EPOCH);
        assert!(w_same.as_secs() > 0.0);
    }

    #[test]
    fn eligibility_by_max_job_size() {
        let c = Cluster::new(16, 16);
        assert!(c.eligible(16));
        assert!(!c.eligible(17));
    }
}
