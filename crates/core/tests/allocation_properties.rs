//! Conservation properties of the ledger: no operation sequence can
//! create or destroy credits.
//!
//! For every account, at all times:
//!
//! * `granted == spent + remaining` (the balance identity),
//! * `spent` equals the net sum of the account's transaction amounts
//!   (debits positive, refunds negative — refunds record the *clamped*
//!   amount, so the book always balances),
//! * `0 <= spent` and `remaining <= granted`.

use green_accounting::Ledger;
use green_units::{Credits, TimePoint};
use proptest::prelude::*;

/// One randomly generated ledger operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Grant(f64),
    Debit(f64),
    Refund(f64),
    DebitUpTo(f64),
}

fn op_strategy() -> BoxedStrategy<(u8, Op)> {
    let amount = 0.0..150.0f64;
    (
        0u8..4, // account index: a small pool forces interleaving
        prop_oneof![
            (0.0..300.0f64).prop_map(Op::Grant).boxed(),
            amount.clone().prop_map(Op::Debit).boxed(),
            amount.clone().prop_map(Op::Refund).boxed(),
            amount.prop_map(Op::DebitUpTo).boxed(),
        ],
    )
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn credits_are_conserved(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut ledger = Ledger::new();
        let owners = ["a0", "a1", "a2", "a3"];
        for (step, (who, op)) in ops.iter().enumerate() {
            let owner = owners[*who as usize];
            let at = TimePoint::from_secs(step as f64);
            match *op {
                Op::Grant(v) => ledger.grant(owner, Credits::new(v)),
                // Overdrafts and unknown accounts may legitimately fail;
                // failures must leave the book untouched, which the final
                // invariants below would catch.
                Op::Debit(v) => {
                    let _ = ledger.debit(owner, Credits::new(v), at, format!("d{step}"));
                }
                Op::Refund(v) => {
                    let _ = ledger.refund(owner, Credits::new(v), at, format!("r{step}"));
                }
                Op::DebitUpTo(v) => {
                    let _ = ledger.debit_up_to(owner, Credits::new(v), at, format!("u{step}"));
                }
            }

            // Invariants hold after every step, not just at the end.
            for owner in owners {
                let Some(acct) = ledger.account(owner) else {
                    continue;
                };
                let net: f64 = ledger
                    .transactions()
                    .iter()
                    .filter(|t| t.account == owner)
                    .map(|t| t.amount.value())
                    .sum();
                prop_assert!(acct.spent.value() >= -1e-9, "negative spend on {owner}");
                prop_assert!(
                    acct.remaining().value() <= acct.granted.value() + 1e-9,
                    "remaining exceeds grant on {owner}"
                );
                prop_assert!(
                    (acct.granted.value() - acct.spent.value() - acct.remaining().value()).abs()
                        < 1e-9,
                    "granted != spent + remaining on {owner}"
                );
                prop_assert!(
                    (acct.spent.value() - net).abs() < 1e-6,
                    "spent {} diverged from transaction net {} on {owner}",
                    acct.spent.value(),
                    net
                );
            }
        }
    }
}
