//! Node specifications: the unit of scheduling and accounting.

use green_carbon::{DepreciationSchedule, DoubleDecliningBalance, HardwareSpec};
use green_units::CarbonMass;
use green_units::{CarbonRate, Power};
use serde::{Deserialize, Serialize};

use crate::cpu::CpuModel;
use crate::facility::Facility;

/// Identifies a machine (a homogeneous partition of nodes) within a catalog
/// or simulation. Plain index; names live on the [`NodeSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MachineId(pub u32);

impl MachineId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for MachineId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// The full specification of one node type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Machine name, e.g. `"TAMU FASTER"`.
    pub name: String,
    /// Year the machine entered service.
    pub year_deployed: i32,
    /// CPU SKU installed.
    pub cpu: CpuModel,
    /// Number of CPU sockets.
    pub sockets: u32,
    /// Schedulable cores per node. Usually `sockets × cores_per_socket`,
    /// but may count SMT threads when the site schedules by thread (the
    /// paper's Desktop exposes 16).
    pub cores: u32,
    /// Idle power of all sockets on the node (monitoring code only).
    pub idle_power: Power,
    /// Installed DRAM.
    pub dram_gib: u32,
    /// Minimum number of cores a job can be provisioned (allocation
    /// granularity); requests are rounded up to a multiple of this.
    pub slice_cores: u32,
    /// Embodied carbon of one node. `None` means "estimate from the
    /// hardware spec via the SCARIF-like model"; `Some` carries a
    /// datasheet-derived calibrated value.
    pub embodied_override: Option<CarbonMass>,
    /// Where the node lives.
    pub facility: Facility,
}

impl NodeSpec {
    /// Total node TDP: all sockets at their design power.
    pub fn node_tdp(&self) -> Power {
        self.cpu.tdp_per_socket * self.sockets as f64
    }

    /// TDP attributable to one schedulable core.
    pub fn tdp_per_core(&self) -> Power {
        self.node_tdp() / self.cores as f64
    }

    /// TDP of a provisioned slice of `cores` cores (after granularity
    /// rounding).
    pub fn slice_tdp(&self, cores: u32) -> Power {
        self.tdp_per_core() * self.provisioned_cores(cores) as f64
    }

    /// Rounds a core request up to the allocation granularity, capped at
    /// the node size.
    pub fn provisioned_cores(&self, requested: u32) -> u32 {
        let slices = requested.max(1).div_ceil(self.slice_cores);
        (slices * self.slice_cores).min(self.cores)
    }

    /// Fraction of the node a request occupies after rounding.
    pub fn provisioned_share(&self, requested: u32) -> f64 {
        self.provisioned_cores(requested) as f64 / self.cores as f64
    }

    /// The node's hardware spec for embodied-carbon estimation.
    pub fn hardware_spec(&self) -> HardwareSpec {
        HardwareSpec::compute_node(self.sockets, self.cores, self.dram_gib)
    }

    /// Embodied carbon of one node: the calibrated override when present,
    /// otherwise the SCARIF-like estimate.
    pub fn embodied_carbon(&self) -> CarbonMass {
        self.embodied_override.unwrap_or_else(|| {
            green_carbon::EmbodiedCarbonModel::scarif_like().estimate(&self.hardware_spec())
        })
    }

    /// Age in whole service years at simulation time, assuming the
    /// simulation epoch is January of `sim_year`.
    pub fn age_years(&self, sim_year: i32) -> u32 {
        (sim_year - self.year_deployed).max(0) as u32
    }

    /// The embodied-carbon charge rate of one node at the simulation year,
    /// under the paper's accelerated (double-declining-balance) schedule.
    pub fn carbon_rate(&self, sim_year: i32) -> CarbonRate {
        DoubleDecliningBalance::standard()
            .hourly_rate(self.embodied_carbon(), self.age_years(sim_year))
    }

    /// Peak-performance charge rate for one core (Peak accounting).
    pub fn peak_rate_per_core(&self) -> f64 {
        self.cpu.peak_per_thread
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use green_carbon::GridRegion;

    fn spec() -> NodeSpec {
        NodeSpec {
            name: "test".into(),
            year_deployed: 2021,
            cpu: CpuModel::new("Xeon 6248R", 24, 205.0, 2500.0),
            sockets: 2,
            cores: 48,
            idle_power: Power::from_watts(136.0),
            dram_gib: 192,
            slice_cores: 16,
            embodied_override: Some(CarbonMass::from_kg(1016.0)),
            facility: Facility::new("UC", GridRegion::UsMidwest, 1.3),
        }
    }

    #[test]
    fn tdp_math() {
        let s = spec();
        assert!((s.node_tdp().as_watts() - 410.0).abs() < 1e-9);
        assert!((s.tdp_per_core().as_watts() - 410.0 / 48.0).abs() < 1e-9);
        assert!((s.slice_tdp(8).as_watts() - 16.0 * 410.0 / 48.0).abs() < 1e-9);
    }

    #[test]
    fn provisioning_rounds_to_slices() {
        let s = spec();
        assert_eq!(s.provisioned_cores(1), 16);
        assert_eq!(s.provisioned_cores(16), 16);
        assert_eq!(s.provisioned_cores(17), 32);
        assert_eq!(s.provisioned_cores(48), 48);
        // Requests beyond the node are capped.
        assert_eq!(s.provisioned_cores(64), 48);
        assert!((s.provisioned_share(17) - 32.0 / 48.0).abs() < 1e-12);
    }

    #[test]
    fn carbon_rate_uses_ddb_age() {
        let s = spec();
        // Age 2 in 2023: rate = 0.4 * 0.6^2 * C / 8760.
        let expect = 0.4 * 0.36 * 1_016_000.0 / 8760.0;
        assert!((s.carbon_rate(2023).as_g_per_hour() - expect).abs() < 1e-6);
        // Before deployment the machine is brand new (age 0).
        assert_eq!(s.age_years(2020), 0);
    }

    #[test]
    fn embodied_falls_back_to_model() {
        let mut s = spec();
        s.embodied_override = None;
        assert!(s.embodied_carbon().as_tonnes() > 0.5);
    }
}
