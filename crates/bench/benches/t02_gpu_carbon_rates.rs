//! Table 2: GPU-node carbon rates under accelerated depreciation.

use criterion::{criterion_group, criterion_main, Criterion};
use green_bench::experiments::gpu::table2;
use green_bench::render;
use green_machines::gpu_nodes;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = table2();
    let printed: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.gpu.clone(),
                r.count.to_string(),
                format!("{:.1}", r.carbon_rate),
            ]
        })
        .collect();
    println!(
        "{}",
        render::table("Table 2 (regenerated)", &["GPU", "#", "gCO2e/h"], &printed)
    );
    let a100_8 = rows
        .iter()
        .find(|r| r.gpu == "A100" && r.count == 8)
        .unwrap();
    assert!((a100_8.carbon_rate - 131.0).abs() / 131.0 < 0.08);

    let nodes = gpu_nodes();
    c.bench_function("table2/carbon_rates", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for node in &nodes {
                acc += node.carbon_rate(black_box(2023)).as_g_per_hour();
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
