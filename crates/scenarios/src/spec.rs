//! Scenario cell specifications: the policy/method/fleet/knob tuple that
//! fully determines one simulation run.

use green_accounting::MethodKind;
use green_batchsim::metrics::cost;
use green_batchsim::Policy;
use green_market::PriceSpec;

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl core::fmt::Display for SpecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SpecError {}

/// A machine-selection policy, in sweep-file spelling.
///
/// `fixed:<machine>` pins every job to one fleet machine (sub-fleet
/// index); `greedy-shift:<hours>` is Greedy plus carbon-aware temporal
/// shifting with the given delay budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicySpec {
    /// Minimize quoted cost under the cell's accounting method.
    Greedy,
    /// Minimize predicted energy.
    Energy,
    /// Cheapest unless another machine halves completion time.
    Mixed,
    /// Earliest finish time.
    Eft,
    /// Minimize runtime.
    Runtime,
    /// Always one machine (index into the cell's fleet subset).
    Fixed(usize),
    /// Greedy + temporal shifting up to this many hours.
    GreedyShift(u32),
    /// Market policy: cheapest *posted* price, with per-agent elastic
    /// temporal shifting (the `elasticity` / `price_schedule` axes give
    /// it teeth).
    Adaptive,
}

impl PolicySpec {
    /// Parses a sweep-file policy token.
    pub fn parse(token: &str) -> Result<PolicySpec, SpecError> {
        let t = token.trim().to_ascii_lowercase();
        if let Some(rest) = t.strip_prefix("fixed:") {
            let idx = rest
                .parse::<usize>()
                .map_err(|_| SpecError(format!("bad fixed policy index in `{token}`")))?;
            return Ok(PolicySpec::Fixed(idx));
        }
        if let Some(rest) = t.strip_prefix("greedy-shift:") {
            let hours = rest
                .parse::<u32>()
                .map_err(|_| SpecError(format!("bad shift budget in `{token}`")))?;
            if hours == 0 {
                return Err(SpecError(format!("shift budget must be ≥ 1 in `{token}`")));
            }
            return Ok(PolicySpec::GreedyShift(hours));
        }
        match t.as_str() {
            "greedy" => Ok(PolicySpec::Greedy),
            "energy" => Ok(PolicySpec::Energy),
            "mixed" => Ok(PolicySpec::Mixed),
            "eft" => Ok(PolicySpec::Eft),
            "runtime" => Ok(PolicySpec::Runtime),
            "adaptive" => Ok(PolicySpec::Adaptive),
            _ => Err(SpecError(format!(
                "unknown policy `{token}` (expected greedy|energy|mixed|eft|runtime|adaptive|fixed:<i>|greedy-shift:<h>)"
            ))),
        }
    }

    /// The batchsim policy this spec selects.
    pub fn to_policy(self) -> Policy {
        match self {
            PolicySpec::Greedy => Policy::Greedy,
            PolicySpec::Energy => Policy::Energy,
            PolicySpec::Mixed => Policy::Mixed,
            PolicySpec::Eft => Policy::Eft,
            PolicySpec::Runtime => Policy::Runtime,
            PolicySpec::Fixed(i) => Policy::Fixed(i),
            PolicySpec::GreedyShift(h) => Policy::GreedyShift { max_delay_hours: h },
            PolicySpec::Adaptive => Policy::Adaptive,
        }
    }

    /// Stable label used in CSV/table output.
    pub fn label(self) -> String {
        match self {
            PolicySpec::Greedy => "greedy".into(),
            PolicySpec::Energy => "energy".into(),
            PolicySpec::Mixed => "mixed".into(),
            PolicySpec::Eft => "eft".into(),
            PolicySpec::Runtime => "runtime".into(),
            PolicySpec::Fixed(i) => format!("fixed:{i}"),
            PolicySpec::GreedyShift(h) => format!("greedy-shift:{h}"),
            PolicySpec::Adaptive => "adaptive".into(),
        }
    }
}

/// An accounting method, in sweep-file spelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodSpec {
    /// Core-time.
    Runtime,
    /// Measured energy.
    Energy,
    /// Core-time × peak score.
    Peak,
    /// Energy-Based Accounting (β = 1).
    Eba,
    /// Carbon-Based Accounting.
    Cba,
}

impl MethodSpec {
    /// Parses a sweep-file method token.
    pub fn parse(token: &str) -> Result<MethodSpec, SpecError> {
        match token.trim().to_ascii_lowercase().as_str() {
            "runtime" => Ok(MethodSpec::Runtime),
            "energy" => Ok(MethodSpec::Energy),
            "peak" => Ok(MethodSpec::Peak),
            "eba" => Ok(MethodSpec::Eba),
            "cba" => Ok(MethodSpec::Cba),
            _ => Err(SpecError(format!(
                "unknown method `{token}` (expected runtime|energy|peak|eba|cba)"
            ))),
        }
    }

    /// The accounting method this spec selects.
    pub fn to_method(self) -> MethodKind {
        match self {
            MethodSpec::Runtime => MethodKind::Runtime,
            MethodSpec::Energy => MethodKind::Energy,
            MethodSpec::Peak => MethodKind::Peak,
            MethodSpec::Eba => MethodKind::eba(),
            MethodSpec::Cba => MethodKind::Cba,
        }
    }

    /// Index into `JobOutcome::charges` for this method.
    pub fn cost_index(self) -> usize {
        match self {
            MethodSpec::Runtime => cost::RUNTIME,
            MethodSpec::Energy => cost::ENERGY,
            MethodSpec::Peak => cost::PEAK,
            MethodSpec::Eba => cost::EBA,
            MethodSpec::Cba => cost::CBA,
        }
    }

    /// Stable label used in CSV/table output.
    pub fn label(self) -> &'static str {
        match self {
            MethodSpec::Runtime => "runtime",
            MethodSpec::Energy => "energy",
            MethodSpec::Peak => "peak",
            MethodSpec::Eba => "eba",
            MethodSpec::Cba => "cba",
        }
    }
}

/// Resolves a sweep-file fleet token to a Table 5 fleet index.
///
/// Accepts the canonical names, short aliases, or a plain index.
pub fn fleet_index(token: &str) -> Result<usize, SpecError> {
    let t = token.trim().to_ascii_lowercase();
    if let Ok(i) = t.parse::<usize>() {
        if i < 4 {
            return Ok(i);
        }
        return Err(SpecError(format!("fleet index {i} out of range (0..=3)")));
    }
    match t.as_str() {
        "faster" | "tamu faster" => Ok(0),
        "desktop" => Ok(1),
        "ic" | "institutional cluster" => Ok(2),
        "theta" | "alcf theta" => Ok(3),
        _ => Err(SpecError(format!(
            "unknown fleet machine `{token}` (expected faster|desktop|ic|theta or 0..=3)"
        ))),
    }
}

/// One fully-resolved sweep cell: everything a single simulation run
/// needs beyond the shared workload state.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Machine-selection policy.
    pub policy: PolicySpec,
    /// Accounting method (drives cost-aware policies and the credits
    /// column).
    pub method: MethodSpec,
    /// Fleet subset: indices into the Table 5 fleet, in simulation order.
    pub fleet: Vec<usize>,
    /// Simulation start year (fixes machine ages → embodied rates).
    pub sim_year: i32,
    /// Simulated user population: sizes both the submitting population
    /// of the generated trace and the per-user Desktop pool.
    pub users: u32,
    /// Backfill scan depth (0 = pure FCFS).
    pub backfill_depth: usize,
    /// Workload volume multiplier (1.0 = the configured trace).
    pub workload_scale: f64,
    /// Grid-intensity multiplier (1.0 = the recorded synthetic year).
    pub intensity_scale: f64,
    /// Log-normal sigma of per-hour intensity jitter (0 = none).
    pub intensity_jitter: f64,
    /// Mean price elasticity of the agent population (0 = rigid users;
    /// only meaningful with the `adaptive` policy).
    pub elasticity: f64,
    /// Posted-price schedule compiled against the cell's intensity
    /// realization.
    pub price_schedule: PriceSpec,
    /// Per-user banked-savings cap, in the cell method's credits
    /// (0 = banking disabled).
    pub banking_cap: f64,
    /// Monte-Carlo replicate seed (drives the intensity realization).
    pub seed: u64,
}

impl ScenarioSpec {
    /// A spec with the paper's defaults for everything but policy and
    /// method; chain the `with_*` builders to deviate.
    pub fn new(policy: PolicySpec, method: MethodSpec) -> ScenarioSpec {
        ScenarioSpec {
            policy,
            method,
            fleet: vec![0, 1, 2, 3],
            sim_year: green_machines::SIM_YEAR,
            users: 250,
            backfill_depth: green_batchsim::cluster::DEFAULT_BACKFILL_DEPTH,
            workload_scale: 1.0,
            intensity_scale: 1.0,
            intensity_jitter: 0.0,
            elasticity: 0.0,
            price_schedule: PriceSpec::Flat,
            banking_cap: 0.0,
            seed: 0,
        }
    }

    /// Sets the fleet subset (Table 5 indices).
    pub fn with_fleet(mut self, fleet: Vec<usize>) -> Self {
        self.fleet = fleet;
        self
    }

    /// Sets the simulation start year.
    pub fn with_sim_year(mut self, year: i32) -> Self {
        self.sim_year = year;
        self
    }

    /// Sets the user population.
    pub fn with_users(mut self, users: u32) -> Self {
        self.users = users;
        self
    }

    /// Sets the backfill depth.
    pub fn with_backfill_depth(mut self, depth: usize) -> Self {
        self.backfill_depth = depth;
        self
    }

    /// Sets the workload volume multiplier.
    pub fn with_workload_scale(mut self, scale: f64) -> Self {
        self.workload_scale = scale;
        self
    }

    /// Sets the intensity multiplier and jitter.
    pub fn with_intensity(mut self, scale: f64, jitter: f64) -> Self {
        self.intensity_scale = scale;
        self.intensity_jitter = jitter;
        self
    }

    /// Sets the market axes: population elasticity, posted-price
    /// schedule, and the banked-savings cap.
    pub fn with_market(mut self, elasticity: f64, schedule: PriceSpec, banking_cap: f64) -> Self {
        self.elasticity = elasticity;
        self.price_schedule = schedule;
        self.banking_cap = banking_cap;
        self
    }

    /// Sets the replicate seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// True when this cell needs market machinery somewhere (simulation
    /// inputs and/or posted-price settlement).
    pub fn market_active(&self) -> bool {
        self.policy == PolicySpec::Adaptive
            || !self.price_schedule.is_flat()
            || self.elasticity > 0.0
            || self.banking_cap > 0.0
    }

    /// True when the market must be wired into the *simulation* itself
    /// (posted quotes and agent shifting). Deliberately narrower than
    /// [`market_active`](ScenarioSpec::market_active): settlement-only
    /// knobs like the banking cap must not perturb placements or
    /// timings — a `banking_caps` axis would otherwise be confounded by
    /// quote re-anchoring.
    pub fn market_drives_decisions(&self) -> bool {
        self.policy == PolicySpec::Adaptive || !self.price_schedule.is_flat()
    }

    /// The label columns identifying this cell (seed excluded — the
    /// replicate axis is aggregated over).
    pub fn config_label(&self) -> Vec<String> {
        vec![
            self.policy.label(),
            self.method.label().to_string(),
            self.fleet
                .iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join("+"),
            self.sim_year.to_string(),
            self.users.to_string(),
            self.backfill_depth.to_string(),
            format!("{:.3}", self.workload_scale),
            format!("{:.3}", self.intensity_scale),
            format!("{:.2}", self.elasticity),
            self.price_schedule.label(),
            format!("{:.1}", self.banking_cap),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_tokens_roundtrip() {
        for (token, spec) in [
            ("greedy", PolicySpec::Greedy),
            ("Energy", PolicySpec::Energy),
            ("mixed", PolicySpec::Mixed),
            ("EFT", PolicySpec::Eft),
            ("runtime", PolicySpec::Runtime),
            ("fixed:2", PolicySpec::Fixed(2)),
            ("greedy-shift:24", PolicySpec::GreedyShift(24)),
        ] {
            assert_eq!(PolicySpec::parse(token).unwrap(), spec);
        }
        assert!(PolicySpec::parse("cheapest").is_err());
        assert!(PolicySpec::parse("fixed:x").is_err());
        assert!(PolicySpec::parse("greedy-shift:0").is_err());
    }

    #[test]
    fn method_tokens_and_cost_indices() {
        assert_eq!(MethodSpec::parse("EBA").unwrap(), MethodSpec::Eba);
        assert_eq!(MethodSpec::Eba.cost_index(), cost::EBA);
        assert_eq!(MethodSpec::Cba.cost_index(), cost::CBA);
        assert!(MethodSpec::parse("joules").is_err());
    }

    #[test]
    fn fleet_tokens() {
        assert_eq!(fleet_index("faster").unwrap(), 0);
        assert_eq!(fleet_index("Desktop").unwrap(), 1);
        assert_eq!(fleet_index("IC").unwrap(), 2);
        assert_eq!(fleet_index("theta").unwrap(), 3);
        assert_eq!(fleet_index("2").unwrap(), 2);
        assert!(fleet_index("5").is_err());
        assert!(fleet_index("frontier").is_err());
    }

    #[test]
    fn adaptive_and_market_axes() {
        assert_eq!(PolicySpec::parse("Adaptive").unwrap(), PolicySpec::Adaptive);
        assert_eq!(PolicySpec::Adaptive.label(), "adaptive");
        let spec = ScenarioSpec::new(PolicySpec::Greedy, MethodSpec::Cba);
        assert!(!spec.market_active(), "defaults are market-free");
        let spec = spec.with_market(1.5, PriceSpec::parse("carbon:0.5").unwrap(), 50.0);
        assert!(spec.market_active());
        let label = spec.config_label();
        assert_eq!(&label[8..], ["1.50", "carbon:0.500", "50.0"]);
        // The adaptive policy alone activates the market too.
        assert!(ScenarioSpec::new(PolicySpec::Adaptive, MethodSpec::Cba).market_active());
    }

    #[test]
    fn builder_defaults_match_paper() {
        let spec = ScenarioSpec::new(PolicySpec::Greedy, MethodSpec::Eba);
        assert_eq!(spec.fleet, vec![0, 1, 2, 3]);
        assert_eq!(spec.sim_year, 2023);
        assert_eq!(spec.users, 250);
        assert_eq!(spec.workload_scale, 1.0);
        let spec = spec.with_users(24).with_intensity(1.5, 0.1).with_seed(7);
        assert_eq!(spec.users, 24);
        assert_eq!(spec.intensity_scale, 1.5);
        assert_eq!(spec.seed, 7);
    }
}
