//! The game's job script.
//!
//! Every participant faces the same 20 jobs in the same arrival order
//! (the paper: "the jobs were the same for all participants"), each with
//! a placebo priority. Job resource profiles are expressed through the
//! same machine-behaviour model the batch simulation uses.

use serde::{Deserialize, Serialize};

/// Placebo priority label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Priority {
    /// "Low".
    Low,
    /// "High".
    High,
    /// "Very High".
    VeryHigh,
}

impl Priority {
    /// Rank used by priority-sensitive agents (higher = more urgent).
    pub fn rank(self) -> f64 {
        match self {
            Priority::Low => 0.0,
            Priority::High => 1.0,
            Priority::VeryHigh => 2.0,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::High => "high",
            Priority::VeryHigh => "very high",
        }
    }
}

/// One job of the script.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GameJob {
    /// Stable id (index in the script).
    pub id: usize,
    /// Requested cores.
    pub cores: u32,
    /// Base runtime in game hours on the reference machine (IC).
    pub base_hours: f64,
    /// Compute intensity χ ∈ [0, 1] (drives cross-machine behaviour).
    pub chi: f64,
    /// Placebo priority.
    pub priority: Priority,
}

/// The fixed 20-job script. Mix of small/large, compute-/memory-bound,
/// and priorities — identical for every participant and version.
pub fn standard_script() -> Vec<GameJob> {
    use Priority::*;
    let spec: [(u32, f64, f64, Priority); 20] = [
        (8, 6.0, 0.85, Low),
        (16, 9.0, 0.55, VeryHigh),
        (32, 12.0, 0.75, Low),
        (4, 4.0, 0.30, High),
        (48, 14.0, 0.90, Low),
        (16, 7.0, 0.45, VeryHigh),
        (8, 5.0, 0.65, Low),
        (64, 16.0, 0.80, High),
        (16, 8.0, 0.25, Low),
        (32, 10.0, 0.60, VeryHigh),
        (8, 6.0, 0.95, High),
        (24, 11.0, 0.50, Low),
        (16, 9.0, 0.70, Low),
        (48, 13.0, 0.35, High),
        (4, 3.0, 0.80, VeryHigh),
        (32, 12.0, 0.55, Low),
        (16, 6.0, 0.40, High),
        (64, 15.0, 0.85, Low),
        (8, 5.0, 0.60, VeryHigh),
        (24, 10.0, 0.70, Low),
    ];
    spec.iter()
        .enumerate()
        .map(|(id, &(cores, base_hours, chi, priority))| GameJob {
            id,
            cores,
            base_hours,
            chi,
            priority,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_has_twenty_fixed_jobs() {
        let a = standard_script();
        let b = standard_script();
        assert_eq!(a.len(), 20);
        assert_eq!(a, b);
    }

    #[test]
    fn script_mixes_sizes_and_priorities() {
        let jobs = standard_script();
        assert!(jobs.iter().any(|j| j.cores <= 8));
        assert!(jobs.iter().any(|j| j.cores >= 48));
        assert!(jobs.iter().any(|j| j.priority == Priority::VeryHigh));
        assert!(jobs.iter().any(|j| j.priority == Priority::Low));
        // Desktop-eligible share is substantial but not universal.
        let small = jobs.iter().filter(|j| j.cores <= 16).count();
        assert!((8..=16).contains(&small));
    }

    #[test]
    fn priority_ranks_ordered() {
        assert!(Priority::VeryHigh.rank() > Priority::High.rank());
        assert!(Priority::High.rank() > Priority::Low.rank());
    }
}
