//! Fungible allocation accounts and the provider-side transaction ledger.
//!
//! An allocation is a grant of credits redeemable on any machine the user
//! can access (Section 3.1); the accounting method defines the credit
//! unit. The ledger enforces non-negative balances (admission control) and
//! keeps an auditable transaction history.

use green_units::{Credits, TimePoint};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Errors surfaced by allocation operations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AllocationError {
    /// The account does not exist.
    UnknownAccount(String),
    /// The debit would overdraw the account.
    InsufficientCredits {
        /// Account that was charged.
        account: String,
        /// Credits requested.
        requested: Credits,
        /// Credits available.
        available: Credits,
    },
    /// Negative amounts are rejected outright.
    NegativeAmount(f64),
}

impl core::fmt::Display for AllocationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AllocationError::UnknownAccount(a) => write!(f, "unknown account `{a}`"),
            AllocationError::InsufficientCredits {
                account,
                requested,
                available,
            } => write!(
                f,
                "account `{account}` has {available} but {requested} were requested"
            ),
            AllocationError::NegativeAmount(v) => write!(f, "negative amount {v}"),
        }
    }
}

impl std::error::Error for AllocationError {}

/// One account's allocation state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// Account owner.
    pub owner: String,
    /// Credits granted in total.
    pub granted: Credits,
    /// Credits spent so far.
    pub spent: Credits,
}

impl Allocation {
    /// Remaining balance.
    pub fn remaining(&self) -> Credits {
        self.granted - self.spent
    }

    /// True when `amount` fits in the remaining balance.
    pub fn can_afford(&self, amount: Credits) -> bool {
        amount.value() <= self.remaining().value() + 1e-9
    }

    /// Fraction of the grant already consumed, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.granted.value() <= 0.0 {
            1.0
        } else {
            (self.spent / self.granted).clamp(0.0, 1.0)
        }
    }
}

/// A ledger entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transaction {
    /// Charged account.
    pub account: String,
    /// Amount (positive = debit, negative = refund).
    pub amount: Credits,
    /// Virtual time of the charge.
    pub at: TimePoint,
    /// Free-form label (job id, machine…).
    pub label: String,
}

/// The provider's book of accounts.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Ledger {
    accounts: HashMap<String, Allocation>,
    transactions: Vec<Transaction>,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Opens (or tops up) an account.
    ///
    /// Granting to an existing owner **accumulates**: the amount is added
    /// to the prior `granted` total and the spend history is untouched. A
    /// grant never replaces or resets an account — renewals stack on top
    /// of whatever the user already holds, exactly like an allocation
    /// extension at a real center.
    pub fn grant(&mut self, owner: &str, amount: Credits) {
        let acct = self
            .accounts
            .entry(owner.to_string())
            .or_insert_with(|| Allocation {
                owner: owner.to_string(),
                granted: Credits::ZERO,
                spent: Credits::ZERO,
            });
        acct.granted += amount;
    }

    /// Looks up an account.
    pub fn account(&self, owner: &str) -> Option<&Allocation> {
        self.accounts.get(owner)
    }

    /// Iterates over every account (arbitrary order).
    pub fn accounts(&self) -> impl Iterator<Item = &Allocation> {
        self.accounts.values()
    }

    /// True when the account can afford `amount` (admission control).
    pub fn can_afford(&self, owner: &str, amount: Credits) -> bool {
        self.accounts
            .get(owner)
            .map(|a| a.can_afford(amount))
            .unwrap_or(false)
    }

    /// Debits an account; rejects overdrafts and negative amounts.
    pub fn debit(
        &mut self,
        owner: &str,
        amount: Credits,
        at: TimePoint,
        label: impl Into<String>,
    ) -> Result<(), AllocationError> {
        if amount.value() < 0.0 {
            return Err(AllocationError::NegativeAmount(amount.value()));
        }
        let acct = self
            .accounts
            .get_mut(owner)
            .ok_or_else(|| AllocationError::UnknownAccount(owner.to_string()))?;
        if !acct.can_afford(amount) {
            return Err(AllocationError::InsufficientCredits {
                account: owner.to_string(),
                requested: amount,
                available: acct.remaining(),
            });
        }
        acct.spent += amount;
        self.transactions.push(Transaction {
            account: owner.to_string(),
            amount,
            at,
            label: label.into(),
        });
        Ok(())
    }

    /// Refunds a previous charge (e.g. an over-estimated admission hold)
    /// and returns the amount actually refunded.
    ///
    /// A refund can never push `spent` below zero; when `amount` exceeds
    /// the outstanding spend, only the outstanding part is refunded and
    /// recorded. Recording the clamped amount (not the requested one)
    /// keeps the ledger conservative: for every account, `spent` equals
    /// the net sum of its transaction amounts.
    pub fn refund(
        &mut self,
        owner: &str,
        amount: Credits,
        at: TimePoint,
        label: impl Into<String>,
    ) -> Result<Credits, AllocationError> {
        if amount.value() < 0.0 {
            return Err(AllocationError::NegativeAmount(amount.value()));
        }
        let acct = self
            .accounts
            .get_mut(owner)
            .ok_or_else(|| AllocationError::UnknownAccount(owner.to_string()))?;
        let refunded = amount.min(acct.spent.max(Credits::ZERO));
        acct.spent -= refunded;
        self.transactions.push(Transaction {
            account: owner.to_string(),
            amount: -refunded,
            at,
            label: label.into(),
        });
        Ok(refunded)
    }

    /// Debits as much of `amount` as the balance allows and returns the
    /// amount actually charged. Used to settle a completed job whose
    /// measured cost exceeded the admission hold: the provider collects
    /// what is left rather than un-running the job.
    pub fn debit_up_to(
        &mut self,
        owner: &str,
        amount: Credits,
        at: TimePoint,
        label: impl Into<String>,
    ) -> Result<Credits, AllocationError> {
        if amount.value() < 0.0 {
            return Err(AllocationError::NegativeAmount(amount.value()));
        }
        let remaining = self
            .accounts
            .get(owner)
            .ok_or_else(|| AllocationError::UnknownAccount(owner.to_string()))?
            .remaining();
        let charge = amount.min(remaining.max(Credits::ZERO));
        self.debit(owner, charge, at, label)?;
        Ok(charge)
    }

    /// Full transaction history, in order.
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Total credits spent across all accounts.
    ///
    /// Summed in owner order, not map order: float addition is not
    /// associative, and `HashMap` iteration order changes per process —
    /// a deterministic order is what lets different `CreditStore`
    /// backends report bit-identical totals for the same stream.
    pub fn total_spent(&self) -> Credits {
        let mut accounts: Vec<&Allocation> = self.accounts.values().collect();
        accounts.sort_by(|a, b| a.owner.cmp(&b.owner));
        accounts.iter().map(|a| a.spent).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_debit_refund_cycle() {
        let mut ledger = Ledger::new();
        ledger.grant("alice", Credits::new(100.0));
        assert!(ledger.can_afford("alice", Credits::new(60.0)));
        ledger
            .debit("alice", Credits::new(60.0), TimePoint::EPOCH, "job-1")
            .unwrap();
        assert!((ledger.account("alice").unwrap().remaining().value() - 40.0).abs() < 1e-9);
        ledger
            .refund(
                "alice",
                Credits::new(10.0),
                TimePoint::EPOCH,
                "job-1 refund",
            )
            .unwrap();
        assert!((ledger.account("alice").unwrap().remaining().value() - 50.0).abs() < 1e-9);
        assert_eq!(ledger.transactions().len(), 2);
    }

    #[test]
    fn overdraft_rejected() {
        let mut ledger = Ledger::new();
        ledger.grant("bob", Credits::new(10.0));
        let err = ledger
            .debit("bob", Credits::new(11.0), TimePoint::EPOCH, "big job")
            .unwrap_err();
        assert!(matches!(err, AllocationError::InsufficientCredits { .. }));
        // Balance untouched after the failed debit.
        assert!((ledger.account("bob").unwrap().remaining().value() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_account_and_negative_amounts() {
        let mut ledger = Ledger::new();
        assert!(matches!(
            ledger.debit("ghost", Credits::new(1.0), TimePoint::EPOCH, "x"),
            Err(AllocationError::UnknownAccount(_))
        ));
        ledger.grant("carol", Credits::new(5.0));
        assert!(matches!(
            ledger.debit("carol", Credits::new(-1.0), TimePoint::EPOCH, "x"),
            Err(AllocationError::NegativeAmount(_))
        ));
        assert!(!ledger.can_afford("ghost", Credits::new(0.1)));
    }

    #[test]
    fn utilization_tracks_spending() {
        let mut ledger = Ledger::new();
        ledger.grant("dave", Credits::new(200.0));
        ledger
            .debit("dave", Credits::new(50.0), TimePoint::EPOCH, "j")
            .unwrap();
        let acct = ledger.account("dave").unwrap();
        assert!((acct.utilization() - 0.25).abs() < 1e-12);
        assert!((ledger.total_spent().value() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn refund_never_goes_negative() {
        let mut ledger = Ledger::new();
        ledger.grant("erin", Credits::new(10.0));
        let refunded = ledger
            .refund("erin", Credits::new(5.0), TimePoint::EPOCH, "oops")
            .unwrap();
        assert!((ledger.account("erin").unwrap().spent.value()).abs() < 1e-12);
        // Nothing was outstanding, so nothing was refunded — and the
        // recorded transaction says so.
        assert!(refunded.value().abs() < 1e-12);
        assert!(ledger.transactions()[0].amount.value().abs() < 1e-12);
    }

    #[test]
    fn grant_on_existing_owner_accumulates() {
        let mut ledger = Ledger::new();
        ledger.grant("frank", Credits::new(100.0));
        ledger
            .debit("frank", Credits::new(30.0), TimePoint::EPOCH, "j1")
            .unwrap();
        // A renewal tops up the same account: granted stacks, spent stays.
        ledger.grant("frank", Credits::new(50.0));
        let acct = ledger.account("frank").unwrap();
        assert!((acct.granted.value() - 150.0).abs() < 1e-12);
        assert!((acct.spent.value() - 30.0).abs() < 1e-12);
        assert!((acct.remaining().value() - 120.0).abs() < 1e-12);
    }

    #[test]
    fn refund_is_clamped_to_outstanding_spend() {
        let mut ledger = Ledger::new();
        ledger.grant("gail", Credits::new(100.0));
        ledger
            .debit("gail", Credits::new(20.0), TimePoint::EPOCH, "hold")
            .unwrap();
        let refunded = ledger
            .refund("gail", Credits::new(35.0), TimePoint::EPOCH, "release")
            .unwrap();
        assert!((refunded.value() - 20.0).abs() < 1e-12);
        // Conservation: spent equals the net sum of transaction amounts.
        let net: f64 = ledger.transactions().iter().map(|t| t.amount.value()).sum();
        assert!((ledger.account("gail").unwrap().spent.value() - net).abs() < 1e-12);
    }
}
