//! Reusable simulation state.
//!
//! A [`SimArena`] owns every growable buffer one simulation run needs —
//! cluster scheduling state (per-user sub-queues, ready index, running
//! tables), the calendar event queue, the per-job state tables, and the
//! outcome records. [`Simulator::run_in`](crate::Simulator::run_in)
//! borrows the arena instead of allocating, so a sweep worker that
//! simulates thousands of cells allocates once per sweep rather than
//! once per cell: after the first cell, steady-state allocation traffic
//! is essentially zero.
//!
//! The arena is plain state, not a lifetime-bearing allocator: buffers
//! are `clear()`ed (capacity kept) between runs, and the one vector
//! that must leave the arena — the outcomes — is handed back through
//! [`SimArena::recycle`] once the caller has reduced the metrics.

use crate::cluster::{Cluster, QueuedJob};
use crate::event::EventQueue;
use crate::metrics::{JobOutcome, RunMetrics};
use crate::policy::MachineOption;

/// Reusable per-run simulation state; see the module docs.
#[derive(Default)]
pub struct SimArena {
    /// One scheduling state per fleet machine, reconfigured per run.
    pub(crate) clusters: Vec<Cluster>,
    /// The calendar event queue (buckets and front heap reused).
    pub(crate) events: EventQueue,
    /// Per-job start time (seconds; NaN until started).
    pub(crate) started_at: Vec<f64>,
    /// Per-job "already postponed once" flag (GreedyShift/Adaptive).
    pub(crate) shifted: Vec<bool>,
    /// Spare outcome storage, recycled between runs.
    pub(crate) outcomes: Vec<JobOutcome>,
    /// Scratch: jobs started by one scheduling pass.
    pub(crate) started_buf: Vec<QueuedJob>,
    /// Scratch: the policy's per-machine options for one arrival.
    pub(crate) options_buf: Vec<MachineOption>,
    /// Scratch: per-machine estimated waits (adaptive agents).
    pub(crate) waits_buf: Vec<f64>,
}

impl SimArena {
    /// An empty arena; buffers grow to the first run's sizes and stay.
    pub fn new() -> SimArena {
        SimArena::default()
    }

    /// Returns a finished run's outcome storage to the arena so the next
    /// run reuses its capacity. Callers that keep the metrics alive
    /// simply skip this — the arena then grows a fresh vector next run.
    pub fn recycle(&mut self, metrics: RunMetrics) {
        let mut outcomes = metrics.outcomes;
        if outcomes.capacity() > self.outcomes.capacity() {
            outcomes.clear();
            self.outcomes = outcomes;
        }
    }
}
