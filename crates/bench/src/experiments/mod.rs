//! One driver module per experiment family.

pub mod embodied;
pub mod gpu;
pub mod platform;
pub mod simulation;
pub mod study;
pub mod surveyfig;
