//! Per-process hardware performance counter samples.

use green_units::{TimePoint, TimeSpan};
use serde::{Deserialize, Serialize};

/// Identifies a task (function invocation / job) across the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u64);

impl core::fmt::Display for TaskId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "task-{}", self.0)
    }
}

/// One per-process counter sample covering a measurement window.
///
/// Counts are totals over the window (the monitor divides by the window
/// length to get rates, mirroring `perf stat` deltas).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// The task the process belongs to.
    pub task: TaskId,
    /// Window end time.
    pub t: TimePoint,
    /// Window length.
    pub window: TimeSpan,
    /// Retired instructions in the window.
    pub instructions: f64,
    /// Last-level-cache misses in the window.
    pub llc_misses: f64,
    /// Cores the task had provisioned during the window.
    pub cores: u32,
}

impl CounterSample {
    /// Instructions per second over the window.
    pub fn ips(&self) -> f64 {
        if self.window.as_secs() == 0.0 {
            0.0
        } else {
            self.instructions / self.window.as_secs()
        }
    }

    /// LLC misses per second over the window.
    pub fn llc_misses_per_sec(&self) -> f64 {
        if self.window.as_secs() == 0.0 {
            0.0
        } else {
            self.llc_misses / self.window.as_secs()
        }
    }

    /// Feature vector consumed by the power model: `[ips, llc/s]`.
    pub fn features(&self) -> [f64; 2] {
        [self.ips(), self.llc_misses_per_sec()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_divide_by_window() {
        let s = CounterSample {
            task: TaskId(1),
            t: TimePoint::from_secs(2.0),
            window: TimeSpan::from_secs(2.0),
            instructions: 4.0e9,
            llc_misses: 2.0e6,
            cores: 8,
        };
        assert!((s.ips() - 2.0e9).abs() < 1.0);
        assert!((s.llc_misses_per_sec() - 1.0e6).abs() < 1e-6);
        assert_eq!(s.features(), [s.ips(), s.llc_misses_per_sec()]);
    }

    #[test]
    fn zero_window_yields_zero_rates() {
        let s = CounterSample {
            task: TaskId(1),
            t: TimePoint::EPOCH,
            window: TimeSpan::ZERO,
            instructions: 1.0e9,
            llc_misses: 1.0e6,
            cores: 1,
        };
        assert_eq!(s.ips(), 0.0);
        assert_eq!(s.llc_misses_per_sec(), 0.0);
    }
}
