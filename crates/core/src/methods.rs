//! The five accounting methods.

use green_units::Credits;
use serde::{Deserialize, Serialize};

use crate::context::ChargeContext;

/// An accounting method: a pure mapping from measured job context to a
/// charge in allocation credits.
///
/// Credit *units* differ by method (core-seconds, joules, grams CO2e…);
/// comparisons across methods go through [`crate::exchange`] or
/// normalization, exactly as the paper normalizes its tables.
pub trait AccountingMethod: Send + Sync {
    /// Short name used in tables.
    fn name(&self) -> &'static str;

    /// Prices one job.
    fn charge(&self, ctx: &ChargeContext) -> Credits;
}

/// The method taxonomy of Section 4.2, with the paper's defaults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MethodKind {
    /// Core-time only (Chameleon-style node/core-hours).
    Runtime,
    /// Measured energy only, no capacity term.
    Energy,
    /// Core-time weighted by machine peak performance (ACCESS-style SUs).
    Peak,
    /// Energy-Based Accounting, Eq. 1. `beta` weights the potential-use
    /// term; the paper uses β = 1.
    Eba {
        /// Weight on the `d_j · TDP_R` term.
        beta: f64,
    },
    /// Carbon-Based Accounting, Eq. 2.
    Cba,
}

impl MethodKind {
    /// All five methods with default parameters, in the paper's order.
    pub const ALL: [MethodKind; 5] = [
        MethodKind::Runtime,
        MethodKind::Energy,
        MethodKind::Peak,
        MethodKind::Eba { beta: 1.0 },
        MethodKind::Cba,
    ];

    /// EBA with the default β = 1.
    pub fn eba() -> MethodKind {
        MethodKind::Eba { beta: 1.0 }
    }

    /// Instantiates the method.
    pub fn build(self) -> Box<dyn AccountingMethod> {
        match self {
            MethodKind::Runtime => Box::new(RuntimeAccounting),
            MethodKind::Energy => Box::new(EnergyAccounting),
            MethodKind::Peak => Box::new(PeakAccounting),
            MethodKind::Eba { beta } => Box::new(EnergyBasedAccounting { beta }),
            MethodKind::Cba => Box::new(CarbonBasedAccounting),
        }
    }

    /// Prices a context without boxing.
    pub fn charge(self, ctx: &ChargeContext) -> Credits {
        match self {
            MethodKind::Runtime => RuntimeAccounting.charge(ctx),
            MethodKind::Energy => EnergyAccounting.charge(ctx),
            MethodKind::Peak => PeakAccounting.charge(ctx),
            MethodKind::Eba { beta } => EnergyBasedAccounting { beta }.charge(ctx),
            MethodKind::Cba => CarbonBasedAccounting.charge(ctx),
        }
    }

    /// Table name.
    pub fn name(self) -> &'static str {
        match self {
            MethodKind::Runtime => "Runtime",
            MethodKind::Energy => "Energy",
            MethodKind::Peak => "Peak",
            MethodKind::Eba { .. } => "EBA",
            MethodKind::Cba => "CBA",
        }
    }
}

impl core::fmt::Display for MethodKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Price ∝ core-time, blind to heterogeneity (Chameleon Cloud model).
/// Credits are core-seconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuntimeAccounting;

impl AccountingMethod for RuntimeAccounting {
    fn name(&self) -> &'static str {
        "Runtime"
    }

    fn charge(&self, ctx: &ChargeContext) -> Credits {
        Credits::new(ctx.duration.as_secs() * ctx.cores as f64)
    }
}

/// Price ∝ measured energy only. Credits are joules (facility energy,
/// i.e. after PUE). The paper's strawman: efficient software is rewarded,
/// but so is squatting on idle reservations.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnergyAccounting;

impl AccountingMethod for EnergyAccounting {
    fn name(&self) -> &'static str {
        "Energy"
    }

    fn charge(&self, ctx: &ChargeContext) -> Credits {
        Credits::new(ctx.facility_energy().as_joules())
    }
}

/// Price ∝ core-time × per-core peak performance (ACCESS service units):
/// higher-performance systems charge more per hour regardless of what the
/// job actually used.
#[derive(Debug, Clone, Copy, Default)]
pub struct PeakAccounting;

impl AccountingMethod for PeakAccounting {
    fn name(&self) -> &'static str {
        "Peak"
    }

    fn charge(&self, ctx: &ChargeContext) -> Credits {
        Credits::new(ctx.duration.as_secs() * ctx.cores as f64 * ctx.peak_per_core)
    }
}

/// **Energy-Based Accounting** (Eq. 1):
/// `ê_j = (e_j + β · d_j · TDP_R) / 2`.
///
/// The average of actual energy and the energy the provisioned slice would
/// have used at its thermal design power. Rewards efficient software while
/// still charging for the hardware the job blocked. Credits are joules.
#[derive(Debug, Clone, Copy)]
pub struct EnergyBasedAccounting {
    /// Weight on the potential-use term (paper: 1.0; `beta < 1` softens the
    /// charge on devices whose TDP far exceeds typical draw).
    pub beta: f64,
}

impl Default for EnergyBasedAccounting {
    fn default() -> Self {
        EnergyBasedAccounting { beta: 1.0 }
    }
}

impl AccountingMethod for EnergyBasedAccounting {
    fn name(&self) -> &'static str {
        "EBA"
    }

    fn charge(&self, ctx: &ChargeContext) -> Credits {
        let potential = ctx.provisioned_tdp * ctx.duration;
        let charge = (ctx.facility_energy() + potential * self.beta) * 0.5;
        Credits::new(charge.as_joules())
    }
}

/// **Carbon-Based Accounting** (Eq. 2):
/// `c_j = e_j · I_f(t) + d_j · D_f(y)/(24·365) · share`.
///
/// Operational carbon of the electricity plus the job's slice of the
/// machine's embodied carbon under accelerated depreciation. Credits are
/// grams of CO2e.
#[derive(Debug, Clone, Copy, Default)]
pub struct CarbonBasedAccounting;

impl AccountingMethod for CarbonBasedAccounting {
    fn name(&self) -> &'static str {
        "CBA"
    }

    fn charge(&self, ctx: &ChargeContext) -> Credits {
        let footprint = green_carbon::attribute_job(
            ctx.facility_energy(),
            ctx.carbon_intensity,
            ctx.duration,
            ctx.carbon_rate,
            ctx.provisioned_share,
        );
        Credits::new(footprint.total().as_grams())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use green_units::{CarbonIntensity, CarbonRate, Energy, Power, TimeSpan};

    fn ctx() -> ChargeContext {
        ChargeContext::new(Energy::from_joules(18.3), TimeSpan::from_secs(5.2))
            .with_cores(8)
            .with_provisioned(Power::from_watts(65.0), 1.0)
            .with_peak(3200.0)
            .with_carbon(
                CarbonIntensity::from_g_per_kwh(454.0),
                CarbonRate::from_g_per_hour(1.479),
            )
    }

    #[test]
    fn runtime_charges_core_seconds() {
        let c = MethodKind::Runtime.charge(&ctx());
        assert!((c.value() - 8.0 * 5.2).abs() < 1e-9);
    }

    #[test]
    fn energy_charges_joules() {
        let c = MethodKind::Energy.charge(&ctx());
        assert!((c.value() - 18.3).abs() < 1e-9);
    }

    #[test]
    fn peak_scales_with_score() {
        let c = MethodKind::Peak.charge(&ctx());
        assert!((c.value() - 8.0 * 5.2 * 3200.0).abs() < 1e-6);
    }

    #[test]
    fn eba_is_equation_one() {
        // (18.3 + 5.2·65)/2 = 178.15
        let c = MethodKind::eba().charge(&ctx());
        assert!((c.value() - 178.15).abs() < 1e-9);
    }

    #[test]
    fn eba_beta_scales_potential_term() {
        let half = MethodKind::Eba { beta: 0.5 }.charge(&ctx());
        assert!((half.value() - (18.3 + 0.5 * 338.0) / 2.0).abs() < 1e-9);
        // β = 0 degenerates to Energy/2.
        let zero = MethodKind::Eba { beta: 0.0 }.charge(&ctx());
        assert!((zero.value() - 18.3 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn cba_is_equation_two() {
        let c = MethodKind::Cba.charge(&ctx());
        let operational = 18.3 / 3.6e6 * 454.0;
        let embodied = 5.2 / 3600.0 * 1.479;
        assert!((c.value() - (operational + embodied)).abs() < 1e-9);
    }

    #[test]
    fn pue_inflates_energy_terms_only() {
        let base = ctx();
        let with_pue = {
            let mut c = base;
            c.pue = 1.5;
            c
        };
        assert!(
            MethodKind::Energy.charge(&with_pue).value() > MethodKind::Energy.charge(&base).value()
        );
        assert_eq!(
            MethodKind::Runtime.charge(&with_pue).value(),
            MethodKind::Runtime.charge(&base).value()
        );
    }

    #[test]
    fn trait_objects_match_kind_dispatch() {
        let c = ctx();
        for kind in MethodKind::ALL {
            let boxed = kind.build();
            assert_eq!(boxed.charge(&c), kind.charge(&c), "{kind}");
            assert_eq!(boxed.name(), kind.name());
        }
    }
}
