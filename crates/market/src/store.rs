//! The sharded concurrent credit ledger.
//!
//! [`ShardedLedger`] stripes accounts over `N` shards by a stable FNV-1a
//! hash of the owner name, so unrelated accounts never contend. Inside a
//! shard:
//!
//! * the account index is a **lock-free open-addressing table**
//!   (`Index`): balance checks — the quote path of every admission
//!   decision — probe atomic slots and read atomic balance cells without
//!   acquiring any lock, shared or exclusive;
//! * balances live in atomics (`f64` bit-cast into `AtomicU64`), so
//!   debits/refunds/settlements are CAS loops — two users on the same
//!   shard only serialize on the shard's transaction-log append, never
//!   on each other's balance arithmetic;
//! * each shard keeps its own append-only transaction log behind a
//!   mutex; [`CreditStore::transactions`] merges the per-shard logs into
//!   one canonical order.
//!
//! Inserting a *new* account (a grant) takes the shard's insert lock;
//! when a table fills, a doubled table is built and atomically
//! published. Retired tables are kept until the ledger drops (total
//! retired capacity is bounded by the final table size, the classic
//! leaky-resize trade), which is what makes the wait-free read path
//! safe without hazard pointers.
//!
//! Semantics are bit-for-bit identical to
//! [`green_accounting::Ledger`]: the same operation stream produces the
//! same [`snapshot`](CreditStore::snapshot) on either backend, which
//! `tests/determinism.rs` in `green-scenarios` cross-checks.

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

use green_accounting::store::sort_transactions;
use green_accounting::{Allocation, AllocationError, CreditStore, Transaction};
use green_units::{Credits, TimePoint};
use parking_lot::Mutex;

/// Balance epsilon matching `Allocation::can_afford`.
const EPS: f64 = 1e-9;

/// Initial slots per shard table (power of two).
const INITIAL_SLOTS: usize = 64;

/// One account: its identity and its balances in atomic cells
/// (`f64` bits).
struct Account {
    owner: String,
    /// The owner's FNV-1a hash, memoized for probe comparisons.
    hash: u64,
    granted: AtomicU64,
    spent: AtomicU64,
}

impl Account {
    fn new(owner: &str, hash: u64) -> Account {
        Account {
            owner: owner.to_string(),
            hash,
            granted: AtomicU64::new(0.0f64.to_bits()),
            spent: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    fn granted(&self) -> f64 {
        f64::from_bits(self.granted.load(Ordering::Acquire))
    }

    fn spent(&self) -> f64 {
        f64::from_bits(self.spent.load(Ordering::Acquire))
    }

    /// CAS-adds to `granted`. `retries` accumulates lost CAS races
    /// (ledger-level contention telemetry; stays untouched uncontended).
    fn add_granted(&self, amount: f64, retries: &AtomicU64) {
        let mut lost = 0u64;
        let mut current = self.granted.load(Ordering::Acquire);
        loop {
            let next = (f64::from_bits(current) + amount).to_bits();
            match self.granted.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(seen) => {
                    lost += 1;
                    current = seen;
                }
            }
        }
        if lost > 0 {
            retries.fetch_add(lost, Ordering::Relaxed);
        }
    }

    /// CAS loop: spend `amount` if affordable, mirroring
    /// `Allocation::can_afford` (an `EPS` slack against rounding).
    fn try_spend(&self, amount: f64, retries: &AtomicU64) -> Result<(), (f64, f64)> {
        let mut lost = 0u64;
        let mut current = self.spent.load(Ordering::Acquire);
        let result = loop {
            let spent = f64::from_bits(current);
            let granted = self.granted();
            if amount > granted - spent + EPS {
                break Err((amount, granted - spent));
            }
            match self.spent.compare_exchange_weak(
                current,
                (spent + amount).to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break Ok(()),
                Err(seen) => {
                    lost += 1;
                    current = seen;
                }
            }
        };
        if lost > 0 {
            retries.fetch_add(lost, Ordering::Relaxed);
        }
        result
    }

    /// CAS loop: spend as much of `amount` as the balance allows; returns
    /// the amount actually spent.
    fn spend_up_to(&self, amount: f64, retries: &AtomicU64) -> f64 {
        let mut lost = 0u64;
        let mut current = self.spent.load(Ordering::Acquire);
        let charged = loop {
            let spent = f64::from_bits(current);
            let remaining = (self.granted() - spent).max(0.0);
            let charge = amount.min(remaining);
            match self.spent.compare_exchange_weak(
                current,
                (spent + charge).to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break charge,
                Err(seen) => {
                    lost += 1;
                    current = seen;
                }
            }
        };
        if lost > 0 {
            retries.fetch_add(lost, Ordering::Relaxed);
        }
        charged
    }

    /// CAS loop: refund up to the outstanding spend; returns the amount
    /// actually refunded.
    fn refund(&self, amount: f64, retries: &AtomicU64) -> f64 {
        let mut lost = 0u64;
        let mut current = self.spent.load(Ordering::Acquire);
        let refunded = loop {
            let spent = f64::from_bits(current);
            let refunded = amount.min(spent.max(0.0));
            match self.spent.compare_exchange_weak(
                current,
                (spent - refunded).to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break refunded,
                Err(seen) => {
                    lost += 1;
                    current = seen;
                }
            }
        };
        if lost > 0 {
            retries.fetch_add(lost, Ordering::Relaxed);
        }
        refunded
    }
}

/// A fixed-capacity open-addressing table of account pointers.
///
/// Slots transition exactly once, from null to a valid `Account`
/// pointer; accounts are never removed. Readers probe with atomic loads
/// only. The pointed-to accounts are owned by the shard's registry and
/// outlive every table, so dereferencing a published slot is always
/// sound.
struct Index {
    /// Capacity − 1 (capacity is a power of two).
    mask: usize,
    slots: Vec<AtomicPtr<Account>>,
}

impl Index {
    fn new(capacity: usize) -> Index {
        debug_assert!(capacity.is_power_of_two());
        Index {
            mask: capacity - 1,
            slots: (0..capacity)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
        }
    }

    /// Linear-probes for an account. Lock-free: null means "not present
    /// at the time of the probe" (a racing insert linearizes after).
    fn find(&self, hash: u64, owner: &str) -> Option<&Account> {
        let mut idx = hash as usize & self.mask;
        loop {
            let ptr = self.slots[idx].load(Ordering::Acquire);
            if ptr.is_null() {
                return None;
            }
            // SAFETY: a non-null slot was published (Release) after the
            // account was fully initialized, and accounts live in the
            // shard registry until the ledger drops — see `Shard`.
            let account = unsafe { &*ptr };
            if account.hash == hash && account.owner == owner {
                return Some(account);
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Inserts a pointer (caller holds the shard insert lock and has
    /// verified the owner is absent and the table has a free slot).
    fn insert(&self, account: *mut Account) {
        // SAFETY: `account` points into the shard registry (see caller).
        let hash = unsafe { &*account }.hash;
        let mut idx = hash as usize & self.mask;
        loop {
            if self.slots[idx].load(Ordering::Relaxed).is_null() {
                self.slots[idx].store(account, Ordering::Release);
                return;
            }
            idx = (idx + 1) & self.mask;
        }
    }
}

/// Owns every account and every table a shard has ever published, as
/// raw heap pointers (`Box::into_raw`). Raw ownership sidesteps `Box`'s
/// noalias guarantees, which lock-free readers holding derived pointers
/// would otherwise violate. Freed in [`Shard::drop`].
struct Registry {
    accounts: Vec<*mut Account>,
    tables: Vec<*mut Index>,
}

// SAFETY: the registry owns the pointed-to allocations outright; all
// access is serialized by the shard's registry mutex, and the payloads
// (`Account`, `Index`) are themselves `Send + Sync`.
unsafe impl Send for Registry {}

/// One stripe: the lock-free account index, the owning account registry,
/// and this stripe's slice of the transaction log.
struct Shard {
    /// The live table. Only ever swapped under the registry lock; read
    /// lock-free.
    index: AtomicPtr<Index>,
    /// Number of accounts in the shard (insert-side bookkeeping).
    len: AtomicUsize,
    /// Owns every account and every table ever published (retired
    /// tables stay alive so stale readers are safe). Locked only to
    /// insert a *new* account or walk all accounts.
    registry: Mutex<Registry>,
    log: Mutex<Vec<Transaction>>,
}

impl Shard {
    fn new() -> Shard {
        let table = Box::into_raw(Box::new(Index::new(INITIAL_SLOTS)));
        Shard {
            index: AtomicPtr::new(table),
            len: AtomicUsize::new(0),
            registry: Mutex::new(Registry {
                accounts: Vec::new(),
                tables: vec![table],
            }),
            log: Mutex::new(Vec::new()),
        }
    }

    /// The live index, for lock-free reads.
    fn index(&self) -> &Index {
        // SAFETY: `index` always points at a table owned by the
        // registry, which is append-only and freed only when the shard
        // drops.
        unsafe { &*self.index.load(Ordering::Acquire) }
    }

    fn find(&self, hash: u64, owner: &str) -> Option<&Account> {
        self.index().find(hash, owner)
    }

    /// Finds or creates an account. The insert lock is taken only when
    /// the fast lock-free probe misses.
    fn find_or_insert(&self, hash: u64, owner: &str) -> &Account {
        if let Some(account) = self.find(hash, owner) {
            return account;
        }
        let mut registry = self.registry.lock();
        // Re-probe under the lock: another grant may have won the race.
        if let Some(account) = self.index().find(hash, owner) {
            // SAFETY: extend the borrow past the registry guard; the
            // account lives until the shard drops.
            return unsafe { &*(account as *const Account) };
        }
        let account = Box::into_raw(Box::new(Account::new(owner, hash)));
        registry.accounts.push(account);

        // SAFETY: the live table is registry-owned and not freed.
        let live = unsafe { &**registry.tables.last().expect("live table") };
        // Keep load factor under 1/2; build and publish a doubled table
        // when the next insert would cross it. Old tables are retired,
        // not freed — stale lock-free readers may still be probing them.
        let len = self.len.load(Ordering::Relaxed);
        if (len + 1) * 2 > live.mask + 1 {
            let grown = Box::into_raw(Box::new(Index::new((live.mask + 1) * 2)));
            // SAFETY: freshly allocated above; published below.
            let grown_ref = unsafe { &*grown };
            for slot in &live.slots {
                let existing = slot.load(Ordering::Relaxed);
                if !existing.is_null() {
                    grown_ref.insert(existing);
                }
            }
            grown_ref.insert(account);
            registry.tables.push(grown);
            self.index.store(grown, Ordering::Release);
        } else {
            live.insert(account);
        }
        self.len.store(len + 1, Ordering::Relaxed);
        // SAFETY: as above — the account outlives the guard.
        unsafe { &*account }
    }

    /// Runs `f` over every account, in insertion order, under the
    /// registry lock.
    fn for_each_account(&self, mut f: impl FnMut(&Account)) {
        let registry = self.registry.lock();
        for &account in &registry.accounts {
            // SAFETY: registry-owned, freed only on drop.
            f(unsafe { &*account });
        }
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        let registry = self.registry.lock();
        // SAFETY: these pointers came from `Box::into_raw`, are owned
        // exclusively by this registry, and nothing can read them after
        // drop (the shard is being destroyed).
        unsafe {
            for &account in &registry.accounts {
                drop(Box::from_raw(account));
            }
            for &table in &registry.tables {
                drop(Box::from_raw(table));
            }
        }
    }
}

/// A concurrent credit ledger striped over account shards.
pub struct ShardedLedger {
    shards: Vec<Shard>,
    /// CAS races lost across every balance loop — an observability
    /// tripwire: deterministically zero on single-threaded replays,
    /// a contention gauge on concurrent ones.
    cas_retries: AtomicU64,
}

/// FNV-1a over the owner name: a stable, seedless hash so shard
/// assignment (and therefore any per-shard observable order) is
/// identical across runs and platforms.
fn fnv1a(owner: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in owner.as_bytes() {
        hash ^= *byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

impl ShardedLedger {
    /// A ledger striped over `shards` stripes (minimum 1).
    pub fn new(shards: usize) -> ShardedLedger {
        ShardedLedger {
            shards: (0..shards.max(1)).map(|_| Shard::new()).collect(),
            cas_retries: AtomicU64::new(0),
        }
    }

    /// Number of stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total CAS races lost across all balance loops so far. Zero on any
    /// single-threaded replay; under concurrency this measures ledger
    /// contention per shard count (the `ledger_cas_retries` counter).
    pub fn cas_retries(&self) -> u64 {
        self.cas_retries.load(Ordering::Relaxed)
    }

    /// Hashes the owner once; the *high* hash bits pick the shard and
    /// the low bits drive the shard table's probe sequence — disjoint
    /// bits, so the accounts landing in one shard don't all start
    /// probing from the same few slots.
    fn locate(&self, owner: &str) -> (u64, &Shard) {
        let hash = fnv1a(owner);
        (
            hash,
            &self.shards[((hash >> 32) % self.shards.len() as u64) as usize],
        )
    }
}

fn record(shard: &Shard, owner: &str, amount: f64, at: TimePoint, label: &str) {
    shard.log.lock().push(Transaction {
        account: owner.to_string(),
        amount: Credits::new(amount),
        at,
        label: label.to_string(),
    });
}

fn unknown(owner: &str) -> AllocationError {
    AllocationError::UnknownAccount(owner.to_string())
}

fn reject_negative(amount: Credits) -> Result<f64, AllocationError> {
    if amount.value() < 0.0 {
        return Err(AllocationError::NegativeAmount(amount.value()));
    }
    Ok(amount.value())
}

impl CreditStore for ShardedLedger {
    fn grant(&self, owner: &str, amount: Credits) {
        let (hash, shard) = self.locate(owner);
        shard
            .find_or_insert(hash, owner)
            .add_granted(amount.value(), &self.cas_retries);
    }

    fn balance(&self, owner: &str) -> Option<Credits> {
        let (hash, shard) = self.locate(owner);
        shard
            .find(hash, owner)
            .map(|a| Credits::new(a.granted() - a.spent()))
    }

    fn can_afford(&self, owner: &str, amount: Credits) -> bool {
        let (hash, shard) = self.locate(owner);
        shard
            .find(hash, owner)
            .map(|a| amount.value() <= a.granted() - a.spent() + EPS)
            .unwrap_or(false)
    }

    fn debit(
        &self,
        owner: &str,
        amount: Credits,
        at: TimePoint,
        label: &str,
    ) -> Result<(), AllocationError> {
        let value = reject_negative(amount)?;
        let (hash, shard) = self.locate(owner);
        shard
            .find(hash, owner)
            .ok_or_else(|| unknown(owner))?
            .try_spend(value, &self.cas_retries)
            .map_err(
                |(requested, available)| AllocationError::InsufficientCredits {
                    account: owner.to_string(),
                    requested: Credits::new(requested),
                    available: Credits::new(available),
                },
            )?;
        record(shard, owner, value, at, label);
        Ok(())
    }

    fn refund(
        &self,
        owner: &str,
        amount: Credits,
        at: TimePoint,
        label: &str,
    ) -> Result<Credits, AllocationError> {
        let value = reject_negative(amount)?;
        let (hash, shard) = self.locate(owner);
        let refunded = shard
            .find(hash, owner)
            .ok_or_else(|| unknown(owner))?
            .refund(value, &self.cas_retries);
        record(shard, owner, -refunded, at, label);
        Ok(Credits::new(refunded))
    }

    fn debit_up_to(
        &self,
        owner: &str,
        amount: Credits,
        at: TimePoint,
        label: &str,
    ) -> Result<Credits, AllocationError> {
        let value = reject_negative(amount)?;
        let (hash, shard) = self.locate(owner);
        let charged = shard
            .find(hash, owner)
            .ok_or_else(|| unknown(owner))?
            .spend_up_to(value, &self.cas_retries);
        record(shard, owner, charged, at, label);
        Ok(Credits::new(charged))
    }

    fn total_spent(&self) -> Credits {
        // Owner-sorted summation, matching `Ledger::total_spent`: float
        // addition order must be identical across backends for the
        // equivalence guarantee to hold bit for bit.
        let mut spent: Vec<(String, f64)> = Vec::new();
        for shard in &self.shards {
            shard.for_each_account(|account| spent.push((account.owner.clone(), account.spent())));
        }
        spent.sort_by(|a, b| a.0.cmp(&b.0));
        Credits::new(spent.iter().map(|(_, s)| s).sum())
    }

    fn transaction_count(&self) -> usize {
        self.shards.iter().map(|s| s.log.lock().len()).sum()
    }

    fn transactions(&self) -> Vec<Transaction> {
        let mut merged: Vec<Transaction> = Vec::with_capacity(self.transaction_count());
        for shard in &self.shards {
            merged.extend(shard.log.lock().iter().cloned());
        }
        sort_transactions(&mut merged);
        merged
    }

    fn snapshot(&self) -> Vec<Allocation> {
        let mut accounts: Vec<Allocation> = Vec::new();
        for shard in &self.shards {
            shard.for_each_account(|a| {
                accounts.push(Allocation {
                    owner: a.owner.clone(),
                    granted: Credits::new(a.granted()),
                    spent: Credits::new(a.spent()),
                })
            });
        }
        accounts.sort_by(|a, b| a.owner.cmp(&b.owner));
        accounts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mirror_of_single_ledger_semantics() {
        let store = ShardedLedger::new(8);
        store.grant("alice", Credits::new(100.0));
        store.grant("alice", Credits::new(50.0)); // grants accumulate
        assert!((store.balance("alice").unwrap().value() - 150.0).abs() < 1e-12);

        assert!(store
            .debit("ghost", Credits::new(1.0), TimePoint::EPOCH, "x")
            .is_err());
        assert!(matches!(
            store.debit("alice", Credits::new(-1.0), TimePoint::EPOCH, "x"),
            Err(AllocationError::NegativeAmount(_))
        ));
        let err = store
            .debit("alice", Credits::new(151.0), TimePoint::EPOCH, "big")
            .unwrap_err();
        assert!(matches!(err, AllocationError::InsufficientCredits { .. }));

        store
            .debit("alice", Credits::new(60.0), TimePoint::EPOCH, "hold")
            .unwrap();
        let refunded = store
            .refund("alice", Credits::new(100.0), TimePoint::EPOCH, "release")
            .unwrap();
        assert!((refunded.value() - 60.0).abs() < 1e-12, "refund clamps");
        let charged = store
            .debit_up_to("alice", Credits::new(500.0), TimePoint::EPOCH, "settle")
            .unwrap();
        assert!((charged.value() - 150.0).abs() < 1e-12);
        assert!((store.total_spent().value() - 150.0).abs() < 1e-12);
        assert_eq!(store.transaction_count(), 3);
        let snapshot = store.snapshot();
        assert_eq!(snapshot.len(), 1);
        assert!((snapshot[0].remaining().value()).abs() < 1e-12);
    }

    #[test]
    fn shard_assignment_is_stable() {
        let index = |owner: &str| ((fnv1a(owner) >> 32) % 4) as usize;
        assert_eq!(index("user-17"), index("user-17"));
        // A spread of users lands on more than one shard.
        let distinct: std::collections::HashSet<usize> =
            (0..32).map(|i| index(&format!("user-{i}"))).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn tables_grow_past_initial_capacity() {
        // Push one shard well past INITIAL_SLOTS/2 inserts so several
        // resize + republish cycles happen, then verify every account is
        // still reachable through the (new) lock-free table.
        let store = ShardedLedger::new(1);
        let n = INITIAL_SLOTS * 4;
        for i in 0..n {
            store.grant(&format!("user-{i}"), Credits::new(i as f64 + 1.0));
        }
        for i in 0..n {
            let balance = store.balance(&format!("user-{i}")).unwrap();
            assert!(
                (balance.value() - (i as f64 + 1.0)).abs() < 1e-12,
                "user-{i}"
            );
        }
        assert_eq!(store.snapshot().len(), n);
    }

    #[test]
    fn concurrent_debits_conserve_credits() {
        let store = Arc::new(ShardedLedger::new(8));
        let users: Vec<String> = (0..16).map(|i| format!("user-{i}")).collect();
        for user in &users {
            store.grant(user, Credits::new(10_000.0));
        }
        let threads = 8;
        let per_thread = 500;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let store = Arc::clone(&store);
                let users = users.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let user = &users[(t * 7 + i) % users.len()];
                        store
                            .debit(user, Credits::new(1.0), TimePoint::EPOCH, "op")
                            .unwrap();
                    }
                });
            }
        });
        let expected = (threads * per_thread) as f64;
        assert!((store.total_spent().value() - expected).abs() < 1e-6);
        assert_eq!(store.transaction_count(), threads * per_thread);
        let snapshot = store.snapshot();
        assert_eq!(snapshot.len(), users.len());
        let total: f64 = snapshot.iter().map(|a| a.spent.value()).sum();
        assert!((total - expected).abs() < 1e-6);
    }

    #[test]
    fn concurrent_grants_and_reads_race_safely() {
        // Granting (inserting new accounts, forcing table growth) while
        // other threads hammer lock-free reads: no read may crash or see
        // a torn account, and every granted account must be visible
        // afterwards.
        let store = Arc::new(ShardedLedger::new(2));
        let writers = 4;
        let per_writer = 200;
        std::thread::scope(|scope| {
            for w in 0..writers {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    for i in 0..per_writer {
                        store.grant(&format!("w{w}-acct-{i}"), Credits::new(1.0));
                    }
                });
            }
            for r in 0..4 {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    for i in 0..per_writer {
                        let owner = format!("w{}-acct-{i}", r % writers);
                        if let Some(balance) = store.balance(&owner) {
                            assert!(balance.value() >= 0.0);
                        }
                        let _ = store.can_afford(&owner, Credits::new(0.5));
                    }
                });
            }
        });
        assert_eq!(store.snapshot().len(), writers * per_writer);
        for w in 0..writers {
            for i in 0..per_writer {
                assert!(store.balance(&format!("w{w}-acct-{i}")).is_some());
            }
        }
    }

    #[test]
    fn concurrent_overdraft_attempts_never_oversell() {
        // 8 threads race to drain an account holding exactly 100 credits
        // in 1-credit debits; exactly 100 must succeed.
        let store = Arc::new(ShardedLedger::new(4));
        store.grant("hot", Credits::new(100.0));
        let successes = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let store = Arc::clone(&store);
                let successes = &successes;
                scope.spawn(move || {
                    for _ in 0..50 {
                        if store
                            .debit("hot", Credits::new(1.0), TimePoint::EPOCH, "drain")
                            .is_ok()
                        {
                            successes.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(successes.load(Ordering::Relaxed), 100);
        assert!((store.balance("hot").unwrap().value()).abs() < 1e-9);
    }
}
