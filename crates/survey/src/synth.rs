//! Individual-level synthesis consistent with the published aggregates.
//!
//! The released data is aggregate-only; downstream code (and the figure
//! regeneration) wants respondent records. The synthesizer deals
//! attributes out of exact count pools — every marginal in
//! [`crate::marginals::SurveyMarginals`] is reproduced *exactly*, with a
//! seeded shuffle deciding only which anonymous respondent carries which
//! answer. Documented cross-question structure (the 39 % of energy
//! reducers unaware of their use) is honoured during dealing.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::marginals::SurveyMarginals;
use crate::questions::{
    CareerStage, DecisionFactor, Importance, MetricAwareness, Region, SustainabilityMetric,
};

/// One synthesized respondent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Respondent {
    /// Anonymous id.
    pub id: usize,
    /// Reported location.
    pub region: Region,
    /// Reported career stage.
    pub career: CareerStage,
    /// In the ≥90 %-completion analysis set.
    pub completed: bool,
    /// Aware of node-hour consumption.
    pub aware_node_hours: bool,
    /// Took steps to reduce node-hours.
    pub reduce_node_hours: bool,
    /// Concerned about finishing within the allocation.
    pub concerned_allocation: bool,
    /// Aware of energy consumption.
    pub aware_energy: bool,
    /// Took steps to reduce energy.
    pub reduce_energy: bool,
    /// Figure 1 answers, aligned with [`SustainabilityMetric::ALL`].
    pub metric_awareness: [MetricAwareness; 4],
    /// Figure 2 answers, aligned with [`DecisionFactor::ALL`]; `None`
    /// when the respondent skipped the question block.
    pub factor_importance: [Option<Importance>; 8],
}

/// Deals `count` `true`s into a boolean pool of size `n`, shuffled.
fn deal_bools(n: usize, count: usize, rng: &mut StdRng) -> Vec<bool> {
    let mut pool = vec![false; n];
    for slot in pool.iter_mut().take(count.min(n)) {
        *slot = true;
    }
    pool.shuffle(rng);
    pool
}

/// Synthesizes the full respondent set from the aggregates.
pub fn synthesize(marginals: &SurveyMarginals, seed: u64) -> Vec<Respondent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = marginals.responses;
    let completed = marginals.completed;

    // Region pool over all responses.
    let mut regions = Vec::with_capacity(n);
    let region_kinds = [
        Region::Europe,
        Region::NorthAmerica,
        Region::Oceania,
        Region::China,
        Region::Undisclosed,
    ];
    for (kind, &count) in region_kinds.iter().zip(&marginals.regions) {
        regions.extend(std::iter::repeat_n(*kind, count));
    }
    regions.shuffle(&mut rng);

    // Career pool (remainder unreported).
    let mut careers = Vec::with_capacity(n);
    let career_kinds = [
        CareerStage::GradStudent,
        CareerStage::EarlyCareer,
        CareerStage::Senior,
    ];
    for (kind, &count) in career_kinds.iter().zip(&marginals.careers) {
        careers.extend(std::iter::repeat_n(*kind, count));
    }
    careers.resize(n, CareerStage::Unreported);
    careers.shuffle(&mut rng);

    // Per-question pools over the completion set.
    let aware_nh = deal_bools(completed, marginals.aware_node_hours, &mut rng);
    let reduce_nh = deal_bools(completed, marginals.reduce_node_hours, &mut rng);
    let concerned = deal_bools(completed, marginals.concerned_allocation, &mut rng);

    // Energy questions carry documented structure: 39 % of reducers are
    // NOT aware of their use. Deal reducers first, then awareness inside/
    // outside that group.
    let reduce_e = deal_bools(completed, marginals.reduce_energy, &mut rng);
    let unaware_reducers =
        (marginals.reduce_energy as f64 * marginals.reduce_energy_unaware_pct).round() as usize;
    let aware_reducers = marginals.reduce_energy - unaware_reducers;
    let aware_nonreducers = marginals.aware_energy.saturating_sub(aware_reducers);
    let mut aware_in_reducers = deal_bools(marginals.reduce_energy, aware_reducers, &mut rng);
    let mut aware_in_rest = deal_bools(
        completed - marginals.reduce_energy,
        aware_nonreducers,
        &mut rng,
    );

    // Figure 1 pools.
    let mut metric_pools: Vec<Vec<MetricAwareness>> = marginals
        .fig1
        .iter()
        .map(|(_, [yes, no, na])| {
            let mut pool = Vec::with_capacity(completed);
            pool.extend(std::iter::repeat_n(MetricAwareness::Yes, *yes));
            pool.extend(std::iter::repeat_n(MetricAwareness::No, *no));
            pool.extend(std::iter::repeat_n(MetricAwareness::NotApplicable, *na));
            pool.shuffle(&mut rng);
            pool
        })
        .collect();

    // Figure 2 pools (answered by a subset; pad with None).
    let mut factor_pools: Vec<Vec<Option<Importance>>> = marginals
        .fig2
        .iter()
        .map(|(_, [not, some, very])| {
            let mut pool = Vec::with_capacity(completed);
            pool.extend(std::iter::repeat_n(Some(Importance::NotImportant), *not));
            pool.extend(std::iter::repeat_n(Some(Importance::Somewhat), *some));
            pool.extend(std::iter::repeat_n(Some(Importance::VeryImportant), *very));
            pool.resize(completed, None);
            pool.shuffle(&mut rng);
            pool
        })
        .collect();

    let mut respondents = Vec::with_capacity(n);
    let mut reducer_idx = 0usize;
    let mut rest_idx = 0usize;
    for id in 0..n {
        let is_completed = id < completed;
        let (aware_energy, reduce_energy) = if is_completed {
            let reduces = reduce_e[id];
            let aware = if reduces {
                let a = aware_in_reducers[reducer_idx];
                reducer_idx += 1;
                a
            } else {
                let a = aware_in_rest[rest_idx];
                rest_idx += 1;
                a
            };
            (aware, reduces)
        } else {
            (false, false)
        };
        respondents.push(Respondent {
            id,
            region: regions[id],
            career: careers[id],
            completed: is_completed,
            aware_node_hours: is_completed && aware_nh[id],
            reduce_node_hours: is_completed && reduce_nh[id],
            concerned_allocation: is_completed && concerned[id],
            aware_energy,
            reduce_energy,
            metric_awareness: if is_completed {
                [
                    metric_pools[0][id],
                    metric_pools[1][id],
                    metric_pools[2][id],
                    metric_pools[3][id],
                ]
            } else {
                [MetricAwareness::NotApplicable; 4]
            },
            factor_importance: if is_completed {
                [
                    factor_pools[0][id],
                    factor_pools[1][id],
                    factor_pools[2][id],
                    factor_pools[3][id],
                    factor_pools[4][id],
                    factor_pools[5][id],
                    factor_pools[6][id],
                    factor_pools[7][id],
                ]
            } else {
                [None; 8]
            },
        });
    }
    // The "id < completed" convention would leak ordering; shuffle the
    // final set and re-number.
    respondents.shuffle(&mut rng);
    for (i, r) in respondents.iter_mut().enumerate() {
        r.id = i;
    }
    // Keep the borrow checker honest about the unused pool tails.
    debug_assert!(aware_in_reducers.len() >= reducer_idx);
    debug_assert!(aware_in_rest.len() >= rest_idx);
    aware_in_reducers.clear();
    aware_in_rest.clear();
    for pool in &mut metric_pools {
        pool.clear();
    }
    for pool in &mut factor_pools {
        pool.clear();
    }
    respondents
}

/// Convenience: counts of one factor's answers among completed
/// respondents, `[not, somewhat, very]`.
pub fn factor_counts(respondents: &[Respondent], factor: DecisionFactor) -> [usize; 3] {
    let idx = DecisionFactor::ALL
        .iter()
        .position(|f| *f == factor)
        .expect("factor known");
    let mut counts = [0usize; 3];
    for r in respondents.iter().filter(|r| r.completed) {
        if let Some(imp) = r.factor_importance[idx] {
            let i = Importance::ALL.iter().position(|x| *x == imp).unwrap();
            counts[i] += 1;
        }
    }
    counts
}

/// Convenience: counts of one metric's answers, `[yes, no, n/a]`.
pub fn metric_counts(respondents: &[Respondent], metric: SustainabilityMetric) -> [usize; 3] {
    let idx = SustainabilityMetric::ALL
        .iter()
        .position(|m| *m == metric)
        .expect("metric known");
    let mut counts = [0usize; 3];
    for r in respondents.iter().filter(|r| r.completed) {
        match r.metric_awareness[idx] {
            MetricAwareness::Yes => counts[0] += 1,
            MetricAwareness::No => counts[1] += 1,
            MetricAwareness::NotApplicable => counts[2] += 1,
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesis_reproduces_exact_marginals() {
        let m = SurveyMarginals::paper();
        let r = synthesize(&m, 11);
        assert_eq!(r.len(), 316);
        assert_eq!(r.iter().filter(|x| x.completed).count(), 192);
        assert_eq!(
            r.iter().filter(|x| x.aware_node_hours).count(),
            m.aware_node_hours
        );
        assert_eq!(r.iter().filter(|x| x.aware_energy).count(), m.aware_energy);
        assert_eq!(
            r.iter().filter(|x| x.reduce_energy).count(),
            m.reduce_energy
        );
        assert_eq!(r.iter().filter(|x| x.region == Region::Europe).count(), 166);
        for (metric, expect) in m.fig1 {
            assert_eq!(metric_counts(&r, metric), expect, "{}", metric.label());
        }
        for (factor, expect) in m.fig2 {
            assert_eq!(factor_counts(&r, factor), expect, "{}", factor.label());
        }
    }

    #[test]
    fn energy_reducer_awareness_structure() {
        let m = SurveyMarginals::paper();
        let r = synthesize(&m, 3);
        let reducers: Vec<_> = r.iter().filter(|x| x.reduce_energy).collect();
        let unaware = reducers.iter().filter(|x| !x.aware_energy).count();
        let share = unaware as f64 / reducers.len() as f64;
        assert!(
            (share - 0.39).abs() < 0.02,
            "39% of reducers unaware, got {share:.2}"
        );
    }

    #[test]
    fn different_seeds_shuffle_but_preserve_counts() {
        let m = SurveyMarginals::paper();
        let a = synthesize(&m, 1);
        let b = synthesize(&m, 2);
        assert_ne!(a, b);
        assert_eq!(
            a.iter().filter(|x| x.aware_energy).count(),
            b.iter().filter(|x| x.aware_energy).count()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let m = SurveyMarginals::paper();
        assert_eq!(synthesize(&m, 42), synthesize(&m, 42));
    }
}
