//! The repository's minimal JSON value model and parser.
//!
//! Shared by the perf-report codec ([`crate::perf`]) and the
//! observability progress sidecars (`green-scenarios`): flat objects of
//! strings, numbers, booleans and nulls — no arrays, no unicode
//! escapes — which is exactly what those schemas emit. Keeping the
//! parser here means the repository needs no serde engine (the vendored
//! `serde` is a marker shim) while every consumer reads the same
//! dialect.

/// A parsed JSON value. Objects preserve key order (the writers emit
/// stable, diff-friendly order and the readers report it back).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `{ "key": value, ... }` in source order.
    Object(Vec<(String, Json)>),
    /// Any numeric literal, held as `f64` (the schemas' counters and
    /// timings all fit without precision loss).
    Number(f64),
    /// A string literal (escapes limited to `\" \\ \n \t`).
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl Json {
    /// The object's fields, or `None` for any other variant.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The numeric value, or `None` for any other variant.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, or `None` for any other variant.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, or `None` for any other variant.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Field lookup on an object (first match in source order).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Parses one complete JSON document (trailing content is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(value)
    }
}

/// Quotes `s` as a JSON string literal (escaping `\`, `"`, newlines and
/// tabs — the writers never emit anything else).
pub fn quote(s: &str) -> String {
    format!(
        "\"{}\"",
        s.replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
            .replace('\t', "\\t")
    )
}

/// Formats a number the way the writers do: integers without a decimal
/// point, everything else with three decimals.
pub fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char,
                self.pos,
                self.bytes.get(self.pos).map(|b| *b as char).unwrap_or('∅')
            ))
        }
    }

    fn literal(&mut self, word: &[u8], value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!(
                "bad literal at byte {} (expected `{}`)",
                self.pos,
                std::str::from_utf8(word).unwrap_or("?")
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(b) if b.is_ascii_digit() || *b == b'-' => self.number(),
            other => Err(format!(
                "unexpected `{}` at byte {}",
                other.map(|b| *b as char).unwrap_or('∅'),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let escaped = self
                        .bytes
                        .get(self.pos + 1)
                        .ok_or("dangling escape at end of input")?;
                    out.push(match escaped {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'n' => '\n',
                        b't' => '\t',
                        other => return Err(format!("unsupported escape `\\{}`", *other as char)),
                    });
                    self.pos += 2;
                }
                Some(b) => {
                    out.push(*b as char);
                    self.pos += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Number)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_object_with_all_scalar_kinds() {
        let doc = r#"{ "name": "2/8", "rows": 64, "rate": 12.5, "complete": true, "eta_s": null, "stalled": false }"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("name").and_then(Json::as_str), Some("2/8"));
        assert_eq!(v.get("rows").and_then(Json::as_number), Some(64.0));
        assert_eq!(v.get("rate").and_then(Json::as_number), Some(12.5));
        assert_eq!(v.get("complete").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("stalled").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("eta_s"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn nested_objects_and_escapes_roundtrip() {
        let key = "odd|name\nwith\ttabs\"and\\slashes";
        let doc = format!("{{ {}: {{ \"inner\": -3e2 }} }}", quote(key));
        let v = Json::parse(&doc).unwrap();
        let inner = v.get(key).expect("escaped key parses back");
        assert_eq!(inner.get("inner").and_then(Json::as_number), Some(-300.0));
    }

    #[test]
    fn rejects_garbage_and_trailing_content() {
        assert!(Json::parse("nope").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("{\"a\": \"unterminated").is_err());
    }

    #[test]
    fn fmt_num_matches_writer_convention() {
        assert_eq!(fmt_num(64.0), "64");
        assert_eq!(fmt_num(12.5), "12.500");
        assert_eq!(fmt_num(-3.0), "-3");
    }
}
