//! Trace job records.

use green_perfmodel::JobCounters;
use green_units::{Energy, TimePoint, TimeSpan};
use serde::{Deserialize, Serialize};

/// Identifies a job within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u32);

/// Identifies a user within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UserId(pub u32);

/// One job of the simulation workload.
///
/// `ref_runtime` and `ref_energy` are the values "measured" on the
/// reference cluster (IC); behaviour on other machines is predicted through
/// the job's counter signature by the two-stage pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Job identity (unique within the trace, including repeats).
    pub id: JobId,
    /// Submitting user.
    pub user: UserId,
    /// Application archetype index (into [`crate::trace::Trace::archetypes`]);
    /// repeats of the same app share this.
    pub archetype: u32,
    /// Requested cores.
    pub cores: u32,
    /// Submission time.
    pub arrival: TimePoint,
    /// Runtime measured on the reference cluster.
    pub ref_runtime: TimeSpan,
    /// Energy measured on the reference cluster.
    pub ref_energy: Energy,
}

impl Job {
    /// The job's counter signature, resolved through the trace's archetype
    /// table.
    pub fn counters(&self, archetypes: &[JobCounters]) -> JobCounters {
        archetypes[self.archetype as usize]
    }

    /// Core-seconds on the reference cluster.
    pub fn ref_core_seconds(&self) -> f64 {
        self.cores as f64 * self.ref_runtime.as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ref_core_seconds() {
        let j = Job {
            id: JobId(0),
            user: UserId(0),
            archetype: 0,
            cores: 16,
            arrival: TimePoint::EPOCH,
            ref_runtime: TimeSpan::from_secs(100.0),
            ref_energy: Energy::from_kwh(0.5),
        };
        assert!((j.ref_core_seconds() - 1600.0).abs() < 1e-9);
    }
}
