//! Golden equivalence of the two aggregation paths on the shipped
//! example grid: the streaming sink must emit byte-identical CSV to the
//! in-memory path, at every thread count, on
//! `examples/sweeps/sensitivity.toml` exactly as users run it.

use green_scenarios::{Sweep, SweepRunner};
use std::path::PathBuf;

fn sensitivity_sweep() -> Sweep {
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/sweeps/sensitivity.toml");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    Sweep::from_toml_str(&text).expect("example sweep parses")
}

#[test]
fn streamed_csv_is_byte_identical_to_in_memory() {
    let sweep = sensitivity_sweep();
    assert_eq!(sweep.cell_count(), 36, "the example grid moved");

    let in_memory = SweepRunner::new(1).run(&sweep).to_csv_string();
    for threads in [1, 2, 4] {
        let mut streamed = Vec::new();
        let summary = SweepRunner::new(threads)
            .run_streamed(&sweep, None, None, &mut streamed)
            .expect("streaming to a Vec cannot fail");
        assert_eq!(summary.cells, 36);
        assert_eq!(summary.configs, 12);
        assert_eq!(
            String::from_utf8(streamed).unwrap(),
            in_memory,
            "streaming path diverged from the in-memory CSV at {threads} threads"
        );
    }
}

/// A writer that records, for every `write`/`flush` it receives, how
/// many cells had completed at that moment — the liveness probe for the
/// streaming contract.
struct TracingWriter {
    /// `(bytes_written_by_this_op, cells_done_at_that_moment, was_flush)`
    ops: std::sync::Mutex<Vec<(usize, usize, bool)>>,
    cells_done: std::sync::Arc<std::sync::atomic::AtomicUsize>,
}

impl std::io::Write for &TracingWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let done = self.cells_done.load(std::sync::atomic::Ordering::SeqCst);
        self.ops.lock().unwrap().push((buf.len(), done, false));
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        let done = self.cells_done.load(std::sync::atomic::Ordering::SeqCst);
        self.ops.lock().unwrap().push((0, done, true));
        Ok(())
    }
}

/// The stream's first byte must be observable before the first cell
/// completes: the header row is written *and flushed* eagerly, not
/// parked in the writer until enough row data accumulates. Guards the
/// regression where a multi-axis grid sat silent until the first
/// buffer's worth of configurations had finished.
#[test]
fn header_is_flushed_before_the_first_cell_completes() {
    let sweep = sensitivity_sweep();
    let cells_done = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let writer = TracingWriter {
        ops: std::sync::Mutex::new(Vec::new()),
        cells_done: std::sync::Arc::clone(&cells_done),
    };
    let progress_cells = std::sync::Arc::clone(&cells_done);
    let progress = move |done: usize, _total: usize| {
        progress_cells.store(done, std::sync::atomic::Ordering::SeqCst);
    };
    let mut out = &writer;
    SweepRunner::new(1)
        .run_streamed(&sweep, None, Some(&progress), &mut out)
        .expect("tracing writer cannot fail");
    let ops = writer.ops.lock().unwrap();
    assert!(ops.len() >= 2, "expected header write + flush, got {ops:?}");
    let (header_bytes, header_done, header_is_flush) = ops[0];
    assert!(
        !header_is_flush && header_bytes > 0,
        "first op is the header"
    );
    assert_eq!(header_done, 0, "header written before any cell completed");
    let (_, flush_done, is_flush) = ops[1];
    assert!(is_flush, "header must be followed by an eager flush");
    assert_eq!(flush_done, 0, "first byte available before the first cell");
}

#[test]
fn streamed_filtered_rows_match_the_filtered_run() {
    let sweep = sensitivity_sweep();
    let filter = Some("greedy/eba");
    let in_memory = SweepRunner::new(2)
        .run_filtered(&sweep, filter, None)
        .to_csv_string();
    let mut streamed = Vec::new();
    let summary = SweepRunner::new(2)
        .run_streamed(&sweep, filter, None, &mut streamed)
        .expect("streaming to a Vec cannot fail");
    assert_eq!(summary.configs, 2, "greedy/eba × two intensity scales");
    assert_eq!(String::from_utf8(streamed).unwrap(), in_memory);
}
