//! Discrete-event multi-cluster batch simulator (Section 5).
//!
//! Replays the 142,380-job workload against the Table 5 fleet under a
//! user machine-selection policy and an accounting method:
//!
//! * each job is routed to one machine at submission by the
//!   [`Policy`] (no migration — once started, a job stays
//!   put even as carbon intensities change, exactly as the paper assumes);
//! * each cluster schedules FCFS with EASY-style backfilling at the
//!   allocation-slice granularity, under the paper's constraint that a
//!   user runs at most one job per cluster at a time;
//! * the per-user "Desktop" is modelled as one private 16-core node per
//!   user (the per-cluster user constraint makes this equivalent to a
//!   shared pool of private nodes);
//! * completed jobs are priced under all five accounting methods and the
//!   carbon ledger (operational + attributed embodied), feeding
//!   Figures 5–7 and Table 6.
//!
//! [`experiment`] wraps the simulator into the paper's three scenarios
//! (EBA, CBA, low-carbon CBA) and computes the fixed-allocation work
//! comparisons.

pub mod arena;
pub mod cluster;
pub mod event;
pub mod experiment;
pub mod market;
pub mod metrics;
pub mod policy;
pub mod profile;
pub mod simulator;

pub use arena::SimArena;
pub use experiment::{intensity_for, run_cell, run_cell_in, Scenario, ScenarioResults};
pub use market::{MarketAgent, MarketInputs, PriceTable};
pub use metrics::{JobOutcome, RunMetrics};
pub use policy::Policy;
pub use profile::PlacementTable;
pub use simulator::{SimConfig, Simulator};
