//! Figures 1 and 2: the survey aggregates.

use green_survey::{figure1, figure2, synthesize, Figure1Row, Figure2Row, SurveyMarginals};

/// Regenerates both figures from a synthesized respondent set.
pub fn figures(seed: u64) -> (Vec<Figure1Row>, Vec<Figure2Row>) {
    let marginals = SurveyMarginals::paper();
    let respondents = synthesize(&marginals, seed);
    (figure1(&respondents), figure2(&respondents))
}

#[cfg(test)]
mod tests {
    use super::*;
    use green_survey::DecisionFactor;

    #[test]
    fn figures_regenerate_published_aggregates() {
        let (f1, f2) = figures(7);
        assert_eq!(f1.len(), 4);
        assert_eq!(f2.len(), 8);
        let energy = f2
            .iter()
            .find(|r| r.factor == DecisionFactor::Energy)
            .unwrap();
        assert_eq!(energy.very_important, 25);
    }
}
