//! Per-cluster scheduling: FCFS with EASY-style backfilling over a core
//! pool, at slice granularity, with the paper's one-running-job-per-user
//! constraint.
//!
//! The queue is organized as **per-user sub-queues** plus a **ready-user
//! index** (users with at least one queued job and nothing running
//! here). Only ready users' jobs can possibly start, so a scheduling
//! pass merges just those sub-queues in submission order instead of
//! scanning the whole interleaved queue past thousands of user-blocked
//! entries — the visit sequence (and therefore every start, reservation
//! and backfill decision) is bit-for-bit the sequence the flat scan
//! produced, but each pass costs O(visited) instead of O(queue). On the
//! paper-scale workload this removes the two O(queue)-per-event terms
//! (the busy-user skip scan and the started-entry compaction) that
//! dominated the simulator's runtime.

use green_units::{TimePoint, TimeSpan};
use green_workload::UserId;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// A job waiting in a cluster queue.
#[derive(Debug, Clone, Copy)]
pub struct QueuedJob {
    /// Index into the workload.
    pub job: usize,
    /// Submitting user.
    pub user: UserId,
    /// Provisioned cores (after slice rounding).
    pub cores: u32,
    /// Predicted runtime on this cluster (used for backfill reservations;
    /// the simulator treats predictions as exact).
    pub runtime: TimeSpan,
    /// Submission time.
    pub submitted: TimePoint,
}

/// A queued job stamped with its cluster-wide submission sequence — the
/// key the per-user sub-queues are merged by.
#[derive(Debug, Clone, Copy)]
struct Entry {
    seq: u64,
    job: QueuedJob,
}

/// A job currently executing.
#[derive(Debug, Clone, Copy)]
struct RunningJob {
    job: usize,
    user: UserId,
    cores: u32,
    ends: TimePoint,
}

/// Default backfill scan depth past the blocked head. Bounding the scan
/// keeps worst-case scheduling cost linear for the single-machine
/// policies whose queues grow into the tens of thousands.
pub const DEFAULT_BACKFILL_DEPTH: usize = 256;

/// Marker for "user not in the ready list".
const NOT_READY: u32 = u32::MAX;

/// One cluster's scheduling state.
#[derive(Debug)]
pub struct Cluster {
    /// Total schedulable cores (nodes × cores per node).
    pub total_cores: u64,
    /// Cores currently free.
    pub free_cores: u64,
    /// Largest single job the cluster accepts, in cores.
    pub max_job_cores: u32,
    /// How many queue entries past the blocked head the backfill pass
    /// may inspect. Zero disables backfilling (pure FCFS) — used by the
    /// scheduling ablation bench.
    pub backfill_depth: usize,
    /// Allocation granularity: the smallest core count any submitted job
    /// can hold (the machine's slice size). When fewer cores than this
    /// are free, no queued job can start and the scheduling pass is a
    /// provable no-op — the early exit that keeps saturated clusters
    /// O(1) per event instead of O(queue).
    pub min_grain: u32,
    /// Release-list entries examined by backfill reservations (the
    /// `earliest_fit` sort work) — a deterministic work counter the
    /// perf gate trends.
    pub release_work: u64,
    /// Merge-frontier steps taken by scheduling passes (entries popped
    /// off the ready-user merge heap) — the scheduler's unit of queue
    /// work, reported as the `ready_user_merges` observability counter.
    pub merge_work: u64,
    /// Scheduling passes that got past the O(1) early exits (i.e.
    /// actually merged sub-queues) — the `schedule_passes` counter.
    pub schedule_passes: u64,
    /// Per-user FIFO sub-queues, indexed by user id.
    queues: Vec<VecDeque<Entry>>,
    /// Total queued jobs across all sub-queues.
    queue_len: usize,
    /// Monotone submission stamp.
    next_seq: u64,
    /// Users with ≥1 queued job and no running job here — the only users
    /// whose jobs a scheduling pass can start.
    ready: Vec<u32>,
    /// Position of each user in `ready` (`NOT_READY` when absent).
    ready_pos: Vec<u32>,
    /// Running jobs in deterministic (insertion, swap-remove) order —
    /// iterated by backfill reservations, so its order must be a pure
    /// function of the event sequence, not of a hash seed.
    running: Vec<RunningJob>,
    /// Job index → slot in `running`.
    running_slot: HashMap<usize, usize>,
    /// Running-job count per user id (direct index — the scheduler
    /// touches this for every submit, so it must be a load, not a hash).
    users_running: Vec<u32>,
    /// Sum of queued core-seconds (wait estimator state).
    queued_core_seconds: f64,
    /// Σ end-time × cores over running jobs (wait estimator state,
    /// maintained incrementally so the estimate is O(1) per query).
    running_ends_cores: f64,
    /// Σ cores over running jobs.
    running_cores: f64,
    /// Scratch: the pass-local merge frontier over ready users'
    /// sub-queues, keyed by submission sequence (kept as a field so a
    /// reused cluster allocates it once).
    merge: BinaryHeap<Reverse<(u64, u32)>>,
    /// Scratch: per-user cursor into their sub-queue during a pass.
    cursors: Vec<u32>,
}

impl Cluster {
    /// Builds a cluster with the given capacity.
    pub fn new(total_cores: u64, max_job_cores: u32) -> Self {
        Cluster {
            total_cores,
            free_cores: total_cores,
            max_job_cores,
            backfill_depth: DEFAULT_BACKFILL_DEPTH,
            min_grain: 1,
            release_work: 0,
            merge_work: 0,
            schedule_passes: 0,
            queues: Vec::new(),
            queue_len: 0,
            next_seq: 0,
            ready: Vec::new(),
            ready_pos: Vec::new(),
            running: Vec::new(),
            running_slot: HashMap::new(),
            users_running: Vec::new(),
            queued_core_seconds: 0.0,
            running_ends_cores: 0.0,
            running_cores: 0.0,
            merge: BinaryHeap::new(),
            cursors: Vec::new(),
        }
    }

    /// Re-points this cluster at a fresh configuration while keeping
    /// every allocation (sub-queues, ready index, running table, merge
    /// scratch) — the arena hook for sweep workers that simulate
    /// thousands of cells.
    pub fn reset(&mut self, total_cores: u64, max_job_cores: u32) {
        self.total_cores = total_cores;
        self.free_cores = total_cores;
        self.max_job_cores = max_job_cores;
        self.backfill_depth = DEFAULT_BACKFILL_DEPTH;
        self.min_grain = 1;
        self.release_work = 0;
        self.merge_work = 0;
        self.schedule_passes = 0;
        for q in &mut self.queues {
            q.clear();
        }
        self.queue_len = 0;
        self.next_seq = 0;
        self.ready.clear();
        for p in &mut self.ready_pos {
            *p = NOT_READY;
        }
        self.running.clear();
        self.running_slot.clear();
        for n in &mut self.users_running {
            *n = 0;
        }
        self.queued_core_seconds = 0.0;
        self.running_ends_cores = 0.0;
        self.running_cores = 0.0;
        self.merge.clear();
    }

    fn user_busy(&self, user: UserId) -> bool {
        self.users_running
            .get(user.0 as usize)
            .is_some_and(|n| *n > 0)
    }

    /// Grows the per-user tables to cover `user`.
    fn ensure_user(&mut self, user: usize) {
        if user >= self.queues.len() {
            self.queues.resize_with(user + 1, VecDeque::new);
            self.ready_pos.resize(user + 1, NOT_READY);
            self.users_running.resize(user + 1, 0);
            self.cursors.resize(user + 1, 0);
        }
    }

    fn add_ready(&mut self, user: usize) {
        if self.ready_pos[user] == NOT_READY {
            self.ready_pos[user] = self.ready.len() as u32;
            self.ready.push(user as u32);
        }
    }

    fn remove_ready(&mut self, user: usize) {
        let pos = self.ready_pos[user];
        if pos == NOT_READY {
            return;
        }
        self.ready_pos[user] = NOT_READY;
        let last = self.ready.len() - 1;
        self.ready.swap_remove(pos as usize);
        if (pos as usize) < last {
            let moved = self.ready[pos as usize] as usize;
            self.ready_pos[moved] = pos;
        }
    }

    /// True when `cores` fits the cluster at all.
    pub fn eligible(&self, cores: u32) -> bool {
        cores <= self.max_job_cores && cores as u64 <= self.total_cores
    }

    /// Number of queued jobs.
    pub fn queue_len(&self) -> usize {
        self.queue_len
    }

    /// Number of running jobs.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Estimated wait for a newly submitted job: zero when it could start
    /// immediately, otherwise the cluster's backlog drained at full
    /// capacity (an M/G/c-style estimate — the paper's EFT policy only
    /// needs a ranking signal, not exact waits). O(1): the running-job
    /// backlog `Σ (ends − now) · cores` is maintained incrementally as
    /// `Σ ends·cores − now · Σ cores` (running jobs always have
    /// `ends ≥ now`, so the per-job clamp the naive sum applied is
    /// vacuous; the whole-sum clamp below only guards rounding drift).
    pub fn estimated_wait(&self, cores: u32, user: UserId, now: TimePoint) -> TimeSpan {
        if !self.user_busy(user) && self.queue_len == 0 && cores as u64 <= self.free_cores {
            return TimeSpan::ZERO;
        }
        let running_remaining = self.running_ends_cores - now.as_secs() * self.running_cores;
        let backlog = running_remaining.max(0.0) + self.queued_core_seconds;
        TimeSpan::from_secs(backlog / self.total_cores as f64)
    }

    /// Enqueues a job.
    pub fn submit(&mut self, job: QueuedJob) {
        self.queued_core_seconds += job.runtime.as_secs() * job.cores as f64;
        let user = job.user.0 as usize;
        self.ensure_user(user);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queues[user].push_back(Entry { seq, job });
        self.queue_len += 1;
        if self.users_running[user] == 0 {
            self.add_ready(user);
        }
    }

    /// Marks a job finished and frees its cores.
    pub fn finish(&mut self, job: usize) {
        let slot = self
            .running_slot
            .remove(&job)
            .expect("finish event for a job not running here");
        let r = self.running.swap_remove(slot);
        if slot < self.running.len() {
            self.running_slot.insert(self.running[slot].job, slot);
        }
        self.free_cores += r.cores as u64;
        self.running_ends_cores -= r.ends.as_secs() * r.cores as f64;
        self.running_cores -= r.cores as f64;
        let user = r.user.0 as usize;
        if let Some(n) = self.users_running.get_mut(user) {
            *n = n.saturating_sub(1);
            if *n == 0 && !self.queues[user].is_empty() {
                self.add_ready(user);
            }
        }
    }

    /// Runs one scheduling pass at time `now`; started jobs are appended
    /// to `started` (an arena buffer the caller reuses across passes).
    ///
    /// Policy: visit queued jobs of *ready* users in submission order —
    /// exactly the jobs the flat scan visited, since jobs of busy users
    /// are skipped unconditionally and a user never becomes un-busy
    /// mid-pass. The first capacity-blocked job becomes the *reserved
    /// head*: its earliest start is computed from running-job end times,
    /// and later entries may backfill only if they cannot delay that
    /// start.
    pub fn schedule_into(&mut self, now: TimePoint, started: &mut Vec<QueuedJob>) {
        // A start needs at least one allocation slice free (below that
        // the whole pass provably mutates nothing, as reservations are
        // pass-local) and at least one ready user — both O(1) exits that
        // keep saturated and fully-user-blocked clusters cheap.
        let grain = self.min_grain.max(1) as u64;
        if self.queue_len == 0 || self.free_cores < grain || self.ready.is_empty() {
            return;
        }
        self.schedule_passes += 1;
        // Seed the merge frontier with every ready user's front entry.
        self.merge.clear();
        for &user in &self.ready {
            let front = self.queues[user as usize]
                .front()
                .expect("ready users have queued jobs");
            self.cursors[user as usize] = 0;
            self.merge.push(Reverse((front.seq, user)));
        }
        let mut reservation: Option<(TimePoint, u64)> = None; // (head start, cores free then)
        let mut scanned_past_head = 0usize;
        while let Some(Reverse((_, user))) = self.merge.pop() {
            self.merge_work += 1;
            let user = user as usize;
            let cursor = self.cursors[user] as usize;
            let job = self.queues[user][cursor].job;
            let fits_now = job.cores as u64 <= self.free_cores;
            let mut start_job = false;
            match (&mut reservation, fits_now) {
                (None, true) => {
                    // FCFS start.
                    start_job = true;
                }
                (None, false) => {
                    // This job reserves the machine.
                    reservation = Some(self.earliest_fit(job.cores, now));
                }
                (Some((head_start, free_at_head)), true) => {
                    scanned_past_head += 1;
                    if scanned_past_head > self.backfill_depth {
                        break;
                    }
                    // EASY condition: either the backfill job ends before
                    // the head could start, or the head still fits at its
                    // reserved time with this job running.
                    let ends_before_head = now + job.runtime <= *head_start;
                    let head_still_fits = *free_at_head >= job.cores as u64;
                    if ends_before_head || head_still_fits {
                        if !ends_before_head {
                            *free_at_head -= job.cores as u64;
                        }
                        start_job = true;
                    }
                }
                (Some(_), false) => {
                    scanned_past_head += 1;
                    if scanned_past_head > self.backfill_depth {
                        break;
                    }
                }
            }
            if start_job {
                self.start(job, now);
                started.push(job);
                // The started entry leaves the queue; its user is busy
                // now, so their remaining entries drop out of the pass
                // (no re-push) and out of the ready set.
                self.queues[user].remove(cursor);
                self.queue_len -= 1;
                self.remove_ready(user);
            } else {
                // Skipped or reserved: advance this user's cursor and
                // keep merging their next entry, if any.
                let next = cursor + 1;
                if next < self.queues[user].len() {
                    self.cursors[user] = next as u32;
                    self.merge
                        .push(Reverse((self.queues[user][next].seq, user as u32)));
                }
            }
            // Once the free pool drops below one slice nothing else can
            // start (and reservations die with the pass) — bail out.
            if self.free_cores < grain {
                break;
            }
        }
    }

    /// [`schedule_into`](Cluster::schedule_into) allocating a fresh
    /// result vector — the convenience form tests and one-shot callers
    /// use.
    pub fn schedule(&mut self, now: TimePoint) -> Vec<QueuedJob> {
        let mut started = Vec::new();
        self.schedule_into(now, &mut started);
        started
    }

    fn start(&mut self, job: QueuedJob, now: TimePoint) {
        debug_assert!(job.cores as u64 <= self.free_cores);
        self.free_cores -= job.cores as u64;
        self.queued_core_seconds -= job.runtime.as_secs() * job.cores as f64;
        if self.queued_core_seconds < 0.0 {
            self.queued_core_seconds = 0.0;
        }
        let slot = job.user.0 as usize;
        self.users_running[slot] += 1;
        let ends = now + job.runtime;
        self.running_ends_cores += ends.as_secs() * job.cores as f64;
        self.running_cores += job.cores as f64;
        self.running_slot.insert(job.job, self.running.len());
        self.running.push(RunningJob {
            job: job.job,
            user: job.user,
            cores: job.cores,
            ends,
        });
    }

    /// Earliest time `cores` become free, and how many cores will be free
    /// then (after the release), based on running-job end times. The
    /// "head still fits" budget excludes the head's own cores: backfill
    /// jobs may consume only the surplus above the head's requirement.
    fn earliest_fit(&mut self, cores: u32, now: TimePoint) -> (TimePoint, u64) {
        self.release_work += self.running.len() as u64;
        // Unstable sort on a precomputed key (one `as_secs` per entry
        // instead of two per comparison); the slot index breaks end-time
        // ties, so the walk order is stable-sort-equivalent over the
        // deterministic insertion order of `running` — a pure function
        // of the event sequence.
        let mut releases: Vec<(f64, u32, u32)> = self
            .running
            .iter()
            .enumerate()
            .map(|(slot, r)| (r.ends.as_secs(), slot as u32, r.cores))
            .collect();
        releases.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        let mut free = self.free_cores;
        let mut when = now;
        for (t, _, c) in releases {
            if free >= cores as u64 {
                break;
            }
            free += c as u64;
            when = TimePoint::from_secs(t);
        }
        // Surplus after the head starts at `when`.
        (when, free.saturating_sub(cores as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qj(job: usize, user: u32, cores: u32, runtime_s: f64, t: f64) -> QueuedJob {
        QueuedJob {
            job,
            user: UserId(user),
            cores,
            runtime: TimeSpan::from_secs(runtime_s),
            submitted: TimePoint::from_secs(t),
        }
    }

    #[test]
    fn fcfs_starts_in_order() {
        let mut c = Cluster::new(100, 100);
        c.submit(qj(0, 0, 40, 100.0, 0.0));
        c.submit(qj(1, 1, 40, 100.0, 0.0));
        c.submit(qj(2, 2, 40, 100.0, 0.0));
        let started = c.schedule(TimePoint::EPOCH);
        // Two fit (80 ≤ 100), the third (would be 120) must wait.
        assert_eq!(started.len(), 2);
        assert_eq!(started[0].job, 0);
        assert_eq!(started[1].job, 1);
        assert_eq!(c.free_cores, 20);
        assert_eq!(c.queue_len(), 1);
    }

    #[test]
    fn backfill_does_not_delay_head() {
        let mut c = Cluster::new(100, 100);
        // Long job holding 60 cores until t=1000; 40 remain free.
        c.submit(qj(0, 0, 60, 1000.0, 0.0));
        c.schedule(TimePoint::EPOCH);
        // Head needs 80 cores: can start only at t=1000 (surplus then: 20).
        c.submit(qj(1, 1, 80, 500.0, 1.0));
        // Short job (20 cores, ends ≈t=504 < 1000): backfills harmlessly.
        c.submit(qj(2, 2, 20, 499.0, 2.0));
        // Long job (20 cores, 5000 s): overlaps the head's start but fits
        // in the 20-core surplus beyond the head's 80 — allowed.
        c.submit(qj(3, 3, 20, 5000.0, 3.0));
        // Another long 20-core job would eat into the head's reservation
        // (surplus exhausted) and no cores are free now anyway — waits.
        c.submit(qj(4, 4, 20, 5000.0, 4.0));
        let started = c.schedule(TimePoint::from_secs(5.0));
        let ids: Vec<usize> = started.iter().map(|s| s.job).collect();
        assert_eq!(ids, vec![2, 3]);
        assert_eq!(c.queue_len(), 2);
    }

    #[test]
    fn user_constraint_serializes_per_cluster() {
        let mut c = Cluster::new(100, 100);
        c.submit(qj(0, 7, 10, 100.0, 0.0));
        c.submit(qj(1, 7, 10, 100.0, 0.0));
        let started = c.schedule(TimePoint::EPOCH);
        assert_eq!(started.len(), 1, "same user must not run twice at once");
        // But another user is not blocked by it.
        c.submit(qj(2, 8, 10, 100.0, 0.0));
        let started = c.schedule(TimePoint::EPOCH);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].user, UserId(8));
        // After the first finishes, the second of user 7 can go.
        c.finish(0);
        let started = c.schedule(TimePoint::from_secs(100.0));
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job, 1);
    }

    #[test]
    fn finish_releases_cores() {
        let mut c = Cluster::new(50, 50);
        c.submit(qj(0, 0, 50, 10.0, 0.0));
        c.schedule(TimePoint::EPOCH);
        assert_eq!(c.free_cores, 0);
        c.finish(0);
        assert_eq!(c.free_cores, 50);
        assert_eq!(c.running_len(), 0);
    }

    #[test]
    fn wait_estimate_zero_when_idle() {
        let mut c = Cluster::new(100, 100);
        assert_eq!(
            c.estimated_wait(10, UserId(0), TimePoint::EPOCH).as_secs(),
            0.0
        );
        c.submit(qj(0, 0, 100, 1000.0, 0.0));
        c.schedule(TimePoint::EPOCH);
        // Cluster saturated: a new job sees a positive backlog.
        let w = c.estimated_wait(10, UserId(1), TimePoint::EPOCH);
        assert!(w.as_secs() > 0.0);
        // The same user as the running job is always positive too.
        let w_same = c.estimated_wait(10, UserId(0), TimePoint::EPOCH);
        assert!(w_same.as_secs() > 0.0);
    }

    #[test]
    fn eligibility_by_max_job_size() {
        let c = Cluster::new(16, 16);
        assert!(c.eligible(16));
        assert!(!c.eligible(17));
    }

    #[test]
    fn same_user_backfills_behind_own_blocked_head() {
        // User 5's big front job reserves the machine; their *own* later
        // small job may still backfill (the user constraint tracks
        // running jobs only) — the case that forces mid-queue removal
        // from a per-user sub-queue.
        let mut c = Cluster::new(100, 100);
        c.submit(qj(0, 0, 60, 1000.0, 0.0));
        c.schedule(TimePoint::EPOCH);
        c.submit(qj(1, 5, 80, 500.0, 1.0)); // blocked head (needs 80 > 40 free)
        c.submit(qj(2, 5, 10, 100.0, 2.0)); // same user, ends before t=1000
        let started = c.schedule(TimePoint::from_secs(3.0));
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job, 2);
        // The blocked head stays queued; user 5 is busy now, so nothing
        // else of theirs starts until job 2 finishes.
        assert_eq!(c.queue_len(), 1);
        assert!(c.schedule(TimePoint::from_secs(4.0)).is_empty());
        c.finish(2);
        c.finish(0);
        let started = c.schedule(TimePoint::from_secs(1000.0));
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job, 1);
    }

    #[test]
    fn reset_clears_state_and_restarts_fifo_order() {
        let mut c = Cluster::new(100, 100);
        c.submit(qj(0, 0, 40, 100.0, 0.0));
        c.submit(qj(1, 1, 40, 100.0, 0.0));
        c.schedule(TimePoint::EPOCH);
        c.reset(50, 50);
        assert_eq!(c.total_cores, 50);
        assert_eq!(c.free_cores, 50);
        assert_eq!(c.queue_len(), 0);
        assert_eq!(c.running_len(), 0);
        assert_eq!(c.release_work, 0);
        assert_eq!(
            c.estimated_wait(10, UserId(0), TimePoint::EPOCH),
            TimeSpan::ZERO
        );
        c.submit(qj(10, 2, 30, 10.0, 0.0));
        c.submit(qj(11, 3, 30, 10.0, 0.0));
        let started = c.schedule(TimePoint::EPOCH);
        assert_eq!(started.len(), 1, "only 50 cores now: 30 + 30 > 50");
        assert_eq!(started[0].job, 10, "submission order restarted");
    }

    #[test]
    fn release_work_counts_reservation_scans() {
        let mut c = Cluster::new(100, 100);
        c.submit(qj(0, 0, 60, 1000.0, 0.0));
        c.schedule(TimePoint::EPOCH);
        assert_eq!(c.release_work, 0, "unblocked starts scan nothing");
        c.submit(qj(1, 1, 80, 500.0, 1.0));
        c.schedule(TimePoint::from_secs(1.0));
        assert_eq!(c.release_work, 1, "one running job examined");
    }
}
