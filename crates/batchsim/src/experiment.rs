//! The paper's three simulation scenarios and their derived figures.

use green_accounting::{ChargeContext, MethodKind};
use green_carbon::{GridRegion, HourlyTrace, IntensitySource};
use green_machines::{simulation_fleet, FleetMachine, SIM_YEAR};
use green_units::TimePoint;
use green_workload::Trace;
use rayon::prelude::*;

use crate::metrics::RunMetrics;
use crate::policy::Policy;
use crate::profile::PlacementTable;
use crate::simulator::{SimConfig, Simulator};

/// A fully specified simulation scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (for reports).
    pub name: String,
    /// Accounting method driving cost-aware policies and the allocation
    /// comparison.
    pub decision: MethodKind,
    /// Policies to simulate.
    pub policies: Vec<Policy>,
    /// The fleet (possibly with re-assigned grids).
    pub fleet: Vec<FleetMachine>,
    /// Hourly intensity per machine, index-aligned with the fleet.
    pub intensity: Vec<HourlyTrace>,
    /// Simulation start year.
    pub sim_year: i32,
    /// Simulated user population (sizes the per-user Desktop pool).
    pub users: u32,
}

impl Scenario {
    /// Section 5.4: EBA over the Table 5 fleet, all eight policies.
    pub fn eba(seed: u64, users: u32) -> Scenario {
        let fleet = simulation_fleet();
        let intensity = default_intensity(&fleet, seed);
        Scenario {
            name: "EBA".into(),
            decision: MethodKind::eba(),
            policies: Policy::paper_set(),
            fleet,
            intensity,
            sim_year: SIM_YEAR,
            users,
        }
    }

    /// Section 5.5: CBA over the same fleet, multi-machine policies.
    pub fn cba(seed: u64, users: u32) -> Scenario {
        let fleet = simulation_fleet();
        let intensity = default_intensity(&fleet, seed);
        Scenario {
            name: "CBA".into(),
            decision: MethodKind::Cba,
            policies: Policy::multi_machine_set(),
            fleet,
            intensity,
            sim_year: SIM_YEAR,
            users,
        }
    }

    /// Section 5.6: the low-carbon scenario. Machines move to
    /// high-variability grids — IC → AU-SA, FASTER → CA-ON,
    /// Desktop → NO-NO2, Theta → DK-BHM — with embodied rates unchanged.
    pub fn low_carbon(seed: u64, users: u32) -> Scenario {
        let mut fleet = simulation_fleet();
        let regions = [
            GridRegion::CaOntario,        // FASTER
            GridRegion::NoSouthernNorway, // Desktop
            GridRegion::AuSouthAustralia, // IC
            GridRegion::DkBornholm,       // Theta
        ];
        for (machine, region) in fleet.iter_mut().zip(regions) {
            machine.spec.facility.region = region;
        }
        let intensity = default_intensity(&fleet, seed);
        Scenario {
            name: "CBA low-carbon".into(),
            decision: MethodKind::Cba,
            policies: Policy::multi_machine_set(),
            fleet,
            intensity,
            sim_year: SIM_YEAR,
            users,
        }
    }

    /// Runs every policy (in parallel) over the workload.
    pub fn run(&self, trace: &Trace, table: &PlacementTable) -> ScenarioResults {
        let runs: Vec<RunMetrics> = self
            .policies
            .par_iter()
            .map(|&policy| {
                Simulator::new(
                    trace,
                    &self.fleet,
                    table,
                    &self.intensity,
                    SimConfig {
                        policy,
                        decision_method: self.decision,
                        sim_year: self.sim_year,
                        users: self.users,
                        backfill_depth: crate::cluster::DEFAULT_BACKFILL_DEPTH,
                        market: None,
                    },
                )
                .run()
            })
            .collect();
        ScenarioResults {
            scenario: self.name.clone(),
            runs,
        }
    }

    /// Figure 7c: for each hour of day, the share of jobs whose cheapest
    /// (CBA) machine is each fleet machine, aggregated over `days` days
    /// and a job sample of `sample` jobs.
    #[allow(clippy::needless_range_loop)]
    pub fn cheapest_by_hour(
        &self,
        trace: &Trace,
        table: &PlacementTable,
        sample: usize,
        days: usize,
    ) -> Vec<[f64; 4]> {
        let step = (trace.jobs.len() / sample.max(1)).max(1);
        let jobs: Vec<usize> = (0..trace.jobs.len()).step_by(step).collect();
        let mut shares = vec![[0.0f64; 4]; 24];
        for hour in 0..24 {
            let mut counts = [0usize; 4];
            for day in 0..days {
                let at = TimePoint::from_hours((day * 24 + hour) as f64);
                for &j in &jobs {
                    let job = &trace.jobs[j];
                    let mut best = None;
                    let mut best_cost = f64::INFINITY;
                    for m in 0..self.fleet.len() {
                        if self.fleet[m].per_user && job.cores > self.fleet[m].spec.cores {
                            continue;
                        }
                        let ctx = self.quote_context(table, job, m, at);
                        let cost = MethodKind::Cba.charge(&ctx).value();
                        if cost < best_cost {
                            best_cost = cost;
                            best = Some(m);
                        }
                    }
                    if let Some(m) = best {
                        counts[m] += 1;
                    }
                }
            }
            let total: usize = counts.iter().sum();
            for m in 0..4 {
                shares[hour][m] = counts[m] as f64 / total.max(1) as f64;
            }
        }
        shares
    }

    fn quote_context(
        &self,
        table: &PlacementTable,
        job: &green_workload::Job,
        machine: usize,
        at: TimePoint,
    ) -> ChargeContext {
        let spec = &self.fleet[machine].spec;
        let slice = spec.slice_cores;
        let provisioned = job.cores.max(1).div_ceil(slice) * slice;
        ChargeContext::new(table.energy(job, machine), table.runtime(job, machine))
            .with_cores(job.cores)
            .with_provisioned(
                spec.tdp_per_core() * provisioned as f64,
                provisioned as f64 / spec.cores as f64,
            )
            .with_peak(spec.cpu.peak_per_thread)
            .with_carbon(
                self.intensity[machine].intensity_at(at),
                spec.carbon_rate(self.sim_year),
            )
    }
}

fn default_intensity(fleet: &[FleetMachine], seed: u64) -> Vec<HourlyTrace> {
    fleet
        .iter()
        .map(|m| m.spec.facility.region.trace(seed, 365))
        .collect()
}

/// One year of per-machine hourly grid intensity for `fleet`, derived
/// deterministically from `seed` — the per-replicate state external sweep
/// drivers (the `green-scenarios` engine) re-derive per cell while
/// sharing the trace and placement table by reference.
pub fn intensity_for(fleet: &[FleetMachine], seed: u64) -> Vec<HourlyTrace> {
    default_intensity(fleet, seed)
}

/// Reusable single-cell run entry: simulates one policy/method
/// configuration against shared, borrowed experiment state, without
/// re-deriving the trace or placement table.
pub fn run_cell(
    trace: &Trace,
    fleet: &[FleetMachine],
    table: &PlacementTable,
    intensity: &[HourlyTrace],
    config: crate::simulator::SimConfig,
) -> RunMetrics {
    crate::simulator::Simulator::new(trace, fleet, table, intensity, config).run()
}

/// [`run_cell`] against a reusable [`crate::SimArena`] — the sweep-worker
/// form that amortizes all simulation allocations across cells.
pub fn run_cell_in(
    trace: &Trace,
    fleet: &[FleetMachine],
    table: &PlacementTable,
    intensity: &[HourlyTrace],
    config: crate::simulator::SimConfig,
    arena: &mut crate::SimArena,
) -> RunMetrics {
    crate::simulator::Simulator::new(trace, fleet, table, intensity, config).run_in(arena)
}

/// [`run_cell_in`] with an observability recorder — see
/// [`Simulator::run_in_obs`](crate::simulator::Simulator::run_in_obs)
/// for the phase/counter taxonomy. Bit-identical results regardless of
/// the recorder.
pub fn run_cell_in_obs<R: green_obs::Recorder>(
    trace: &Trace,
    fleet: &[FleetMachine],
    table: &PlacementTable,
    intensity: &[HourlyTrace],
    config: crate::simulator::SimConfig,
    arena: &mut crate::SimArena,
    obs: &R,
) -> RunMetrics {
    crate::simulator::Simulator::new(trace, fleet, table, intensity, config).run_in_obs(arena, obs)
}

/// All policy runs of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResults {
    /// Scenario name.
    pub scenario: String,
    /// One metrics record per policy, in scenario policy order.
    pub runs: Vec<RunMetrics>,
}

impl ScenarioResults {
    /// Looks up a run by policy display name.
    pub fn run(&self, policy: &str) -> Option<&RunMetrics> {
        self.runs.iter().find(|r| r.policy == policy)
    }

    /// The fixed-allocation work comparison (Figures 5a, 6, 7a): the
    /// allocation is sized so the *Greedy* run completes its entire
    /// workload, and every policy reports the work it finishes within
    /// that same budget. Returns `(policy, core-hours)` pairs.
    pub fn work_with_fixed_allocation(&self, kind: usize) -> Vec<(String, f64)> {
        let allocation = self
            .run("Greedy")
            .map(|g| g.total_cost(kind))
            .unwrap_or(f64::INFINITY);
        self.runs
            .iter()
            .map(|r| (r.policy.clone(), r.work_within_allocation(allocation, kind)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::cost;
    use green_perfmodel::{CrossMachinePredictor, MachineBehavior};
    use green_workload::TraceConfig;

    fn setup(scenario: &Scenario) -> (Trace, PlacementTable) {
        let behaviors: Vec<MachineBehavior> = scenario
            .fleet
            .iter()
            .map(|m| MachineBehavior::for_spec(&m.spec))
            .collect();
        let predictor = CrossMachinePredictor::train(behaviors, 2, 31);
        let trace = Trace::generate(&TraceConfig::small(31), &predictor);
        let table = PlacementTable::build(&trace, &scenario.fleet, &predictor);
        (trace, table)
    }

    #[test]
    fn eba_scenario_greedy_completes_most_work() {
        let scenario = Scenario::eba(31, 24);
        let (trace, table) = setup(&scenario);
        let results = scenario.run(&trace, &table);
        assert_eq!(results.runs.len(), 8);
        let work = results.work_with_fixed_allocation(cost::EBA);
        let get = |name: &str| {
            work.iter()
                .find(|(n, _)| n == name)
                .map(|(_, w)| *w)
                .unwrap()
        };
        let greedy = get("Greedy");
        assert!(greedy > 0.0);
        // Greedy completes at least as much work as every other policy
        // within its own allocation.
        for (name, w) in &work {
            assert!(
                *w <= greedy * 1.01,
                "{name} beat Greedy: {w:.0} vs {greedy:.0}"
            );
        }
        // Theta-only is the worst of the fixed policies under EBA.
        assert!(get("ALCF Theta") < get("Institutional Cluster"));
    }

    #[test]
    fn low_carbon_scenario_swaps_grids() {
        let scenario = Scenario::low_carbon(5, 8);
        assert_eq!(
            scenario.fleet[2].spec.facility.region,
            GridRegion::AuSouthAustralia
        );
        assert_eq!(
            scenario.fleet[3].spec.facility.region,
            GridRegion::DkBornholm
        );
        // Embodied rates unchanged from Table 5.
        let rate = scenario.fleet[0].spec.carbon_rate(SIM_YEAR).as_g_per_hour();
        assert!((rate - 105.2).abs() / 105.2 < 0.01);
    }

    #[test]
    fn cheapest_by_hour_shares_sum_to_one() {
        let scenario = Scenario::low_carbon(7, 8);
        let (trace, table) = setup(&scenario);
        let shares = scenario.cheapest_by_hour(&trace, &table, 100, 5);
        assert_eq!(shares.len(), 24);
        for row in &shares {
            let total: f64 = row.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "{row:?}");
        }
    }

    #[test]
    fn temporal_shifting_lands_at_spatial_parity() {
        // The GreedyShift extension on volatile low-carbon grids. The
        // instructive outcome: with four machines on decorrelated grids,
        // *spatial* arbitrage (Figure 7c — some machine is always cheap)
        // already captures nearly all the temporal variance, so adding a
        // 24 h delay budget moves the carbon bill by at most a few
        // percent in either direction (queue-compression noise included).
        let mut scenario = Scenario::low_carbon(13, 16);
        scenario.policies = vec![
            Policy::Greedy,
            Policy::GreedyShift {
                max_delay_hours: 24,
            },
        ];
        let (trace, table) = setup(&scenario);
        let results = scenario.run(&trace, &table);
        let greedy = &results.runs[0];
        let shifted = &results.runs[1];
        assert_eq!(shifted.policy, "Greedy+Shift(24h)");
        assert_eq!(greedy.outcomes.len(), shifted.outcomes.len());
        let ratio = shifted.attributed_carbon_kg() / greedy.attributed_carbon_kg();
        assert!(
            (0.90..1.05).contains(&ratio),
            "shifting should sit near spatial parity: ratio {ratio:.3}"
        );
    }
}
