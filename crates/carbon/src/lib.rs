//! Carbon modelling for impact-based HPC accounting.
//!
//! Three concerns live here, mirroring Section 3.3 of the paper:
//!
//! * **Operational carbon** — the grid's carbon intensity `I_f(t)` at the
//!   facility, as a function of time. Real deployments read this from grid
//!   operators or public APIs (Electricity Maps); this crate provides
//!   deterministic synthetic [`grids`] with realistic diurnal/seasonal
//!   structure, plus trace containers for replaying recorded data.
//! * **Embodied carbon** — the manufacturing footprint `C_f` of a machine,
//!   estimated from hardware specifications by a SCARIF-like parametric
//!   model ([`embodied`]).
//! * **Depreciation** — how `C_f` is attributed to jobs over the machine's
//!   lifetime. The paper argues for accelerated (double-declining-balance)
//!   depreciation over the standard linear scheme; both are implemented in
//!   [`depreciation`] and compared in Table 4.
//!
//! [`attribution`] combines the three into a per-job carbon footprint, the
//! quantity CBA charges for.

pub mod attribution;
pub mod depreciation;
pub mod embodied;
pub mod grids;
pub mod intensity;

pub use attribution::{attribute_job, JobCarbonFootprint};
pub use depreciation::{DepreciationSchedule, DoubleDecliningBalance, LinearDepreciation};
pub use embodied::{ChassisClass, EmbodiedCarbonModel, GpuClass, HardwareSpec};
pub use grids::{GridModel, GridRegion};
pub use intensity::{ConstantIntensity, HourlyTrace, IntensitySource};
