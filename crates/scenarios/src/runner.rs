//! The parallel sweep runner.
//!
//! Expensive state is built **once** and `Arc`-shared across worker
//! threads and cells:
//!
//! * the base [`Trace`] (plus one scaled variant per distinct
//!   `workload_scale`),
//! * one projected [`PlacementTable`] + sub-fleet per distinct fleet
//!   subset ([`FleetSlice`]),
//! * one hourly-intensity realization per distinct
//!   `(fleet, seed, scale, jitter)` — cells that differ only in policy,
//!   method, elasticity, schedule or cap reuse the same realization,
//! * one compiled posted-price table per distinct
//!   `(realization, schedule)`, and one agent population per distinct
//!   `(users, elasticity)`.
//!
//! Workers claim cell indices from an atomic counter and report results
//! keyed by index, so the assembled output is a pure function of the
//! sweep spec: **thread count cannot change a single byte** of the
//! aggregated results, which `tests/determinism.rs` asserts — and the
//! streaming sink produces the same bytes as the in-memory path, which
//! `tests/streaming_golden.rs` asserts.

use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use green_accounting::CreditStore;
use green_batchsim::{
    intensity_for, run_cell_in_obs, MarketInputs, PlacementTable, PriceTable, RunMetrics, SimArena,
    SimConfig,
};
use green_carbon::HourlyTrace;
use green_chaos::{probe, torn_crash, Chaos, Failpoint, NoopChaos};
use green_machines::{simulation_fleet, FleetMachine};
use green_market::{
    market_population, price_table, settle_run_in, CreditBank, PriceSpec, SettleScratch,
    ShardedLedger,
};
use green_obs::{Counter, NoopRecorder, Phase, Recorder, SpanKind, Stopwatch};
use green_perfmodel::{CrossMachinePredictor, MachineBehavior};
use green_workload::Trace;

use crate::agg::{CellSummary, SweepResults, CSV_HEADERS};
use crate::reorder::{ClaimWindow, ReorderBuffer};
use crate::spec::ScenarioSpec;
use crate::sweep::{Cell, Sweep};

/// Scalar metrics extracted from one simulation run (one cell).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellMetrics {
    /// Jobs completed.
    pub completed: usize,
    /// Jobs no machine could take.
    pub rejected: usize,
    /// Total energy, MWh.
    pub energy_mwh: f64,
    /// Operational carbon, kgCO2e.
    pub op_carbon_kg: f64,
    /// Attributed carbon, kgCO2e.
    pub attr_carbon_kg: f64,
    /// Total charge under the cell's accounting method.
    pub credits: f64,
    /// Mean queue wait, hours.
    pub mean_wait_h: f64,
    /// Makespan, hours.
    pub makespan_h: f64,
    /// Machine-neutral work, core-hours.
    pub work_core_h: f64,
    /// Busy core-time over fleet capacity × makespan.
    pub utilization: f64,
    /// Credits collected at posted market prices (0 when the cell has no
    /// market).
    pub posted_credits: f64,
    /// Credits banked from off-peak savings after cap and decay.
    pub banked_credits: f64,
    /// Simulator events processed (deterministic work counter; not
    /// aggregated into the CSV).
    pub events: usize,
    /// Scheduler release-list entries examined by backfill reservations
    /// (deterministic work counter; not aggregated into the CSV).
    pub release_work: u64,
}

impl CellMetrics {
    /// Extracts the scalar summary from a run. `capacity_cores` is the
    /// total core count of the simulated fleet subset (Desktop pool
    /// already multiplied by the user population).
    pub fn of(metrics: &RunMetrics, spec: &ScenarioSpec, capacity_cores: f64) -> CellMetrics {
        let busy_core_s: f64 = metrics
            .outcomes
            .iter()
            .map(|o| (o.end_s - o.start_s) * o.cores as f64)
            .sum();
        let makespan_h = metrics.makespan_hours();
        let utilization = if makespan_h > 0.0 && capacity_cores > 0.0 {
            busy_core_s / 3600.0 / (capacity_cores * makespan_h)
        } else {
            0.0
        };
        CellMetrics {
            completed: metrics.outcomes.len(),
            rejected: metrics.rejected,
            energy_mwh: metrics.total_energy_mwh(),
            op_carbon_kg: metrics.operational_carbon_kg(),
            attr_carbon_kg: metrics.attributed_carbon_kg(),
            credits: metrics.total_cost(spec.method.cost_index()),
            mean_wait_h: metrics.mean_wait_hours(),
            makespan_h,
            work_core_h: metrics.total_work(),
            utilization,
            posted_credits: 0.0,
            banked_credits: 0.0,
            events: metrics.events,
            release_work: metrics.release_work,
        }
    }
}

/// One fleet subset's shared simulation inputs: the Table 5 indices, the
/// materialized sub-fleet, and the projected placement table.
pub struct FleetSlice {
    /// Indices into the full Table 5 fleet.
    pub indices: Vec<usize>,
    /// The materialized sub-fleet, in subset order.
    pub machines: Vec<FleetMachine>,
    /// The placement table projected onto the subset.
    pub table: PlacementTable,
}

/// The shared artifacts of one simulated user population: its trace
/// variants (one per workload scale) and fleet slices (one per fleet
/// subset). The submitting population changes the trace itself — who
/// owns which application archetypes — so each distinct `users` value
/// gets its own world slice.
pub struct PopulationWorld {
    /// The user-population size this slice models.
    pub users: u32,
    /// Trace variants: `(workload_scale, trace)`, deduplicated and
    /// `Arc`-shared with every cell that replays them.
    pub traces: Vec<(f64, Arc<Trace>)>,
    /// The full-fleet placement table for this population's archetypes.
    pub table: PlacementTable,
    /// One shared slice per distinct fleet subset.
    pub fleets: Vec<Arc<FleetSlice>>,
}

/// Shared, immutable sweep state — built once, borrowed by every worker.
pub struct SweepWorld {
    /// The Table 5 fleet (full).
    pub fleet: Vec<FleetMachine>,
    /// One slice per distinct `users` axis value.
    pub populations: Vec<PopulationWorld>,
    /// Seed for the market agent population (the workload seed, so the
    /// same simulated people submit the jobs and react to prices).
    pub agent_seed: u64,
}

impl SweepWorld {
    /// Builds every shared artifact a sweep needs.
    pub fn build(sweep: &Sweep) -> SweepWorld {
        let fleet = simulation_fleet();
        let behaviors: Vec<MachineBehavior> = fleet
            .iter()
            .map(|m| MachineBehavior::for_spec(&m.spec))
            .collect();
        let predictor = CrossMachinePredictor::train(behaviors, 2, sweep.workload.seed);

        let mut populations: Vec<PopulationWorld> = Vec::new();
        for &users in &sweep.users {
            if populations.iter().any(|p| p.users == users) {
                continue;
            }
            // The users axis varies the *submitting population*: same
            // total demand (unique_jobs fixed by the preset), spread over
            // `users` people — which also resizes the per-user Desktop
            // pool through SimConfig.users below.
            let mut config = sweep.workload.trace_config();
            config.users = users;
            let base = Trace::generate(&config, &predictor);
            let base = if sweep.workload.doubled {
                base.doubled()
            } else {
                base
            };
            let table = PlacementTable::build(&base, &fleet, &predictor);
            let base = Arc::new(base);

            let mut traces: Vec<(f64, Arc<Trace>)> = Vec::new();
            for &scale in &sweep.workload_scales {
                if traces.iter().any(|(s, _)| *s == scale) {
                    continue;
                }
                let trace = if scale == 1.0 {
                    Arc::clone(&base)
                } else {
                    Arc::new(base.scaled(scale, sweep.workload.seed))
                };
                traces.push((scale, trace));
            }

            let mut fleets: Vec<Arc<FleetSlice>> = Vec::new();
            for subset in &sweep.fleets {
                if fleets.iter().any(|f| &f.indices == subset) {
                    continue;
                }
                fleets.push(Arc::new(FleetSlice {
                    indices: subset.clone(),
                    machines: subset.iter().map(|&i| fleet[i].clone()).collect(),
                    table: table.project(subset),
                }));
            }

            populations.push(PopulationWorld {
                users,
                traces,
                table,
                fleets,
            });
        }

        SweepWorld {
            fleet,
            populations,
            agent_seed: sweep.workload.seed,
        }
    }

    fn population_for(&self, users: u32) -> &PopulationWorld {
        self.populations
            .iter()
            .find(|p| p.users == users)
            .expect("population prepared at build time")
    }

    /// Runs one cell against the shared state and caches, with fresh
    /// simulation state — the one-shot form of
    /// [`run_cell_in`](SweepWorld::run_cell_in).
    pub fn run_cell(&self, spec: &ScenarioSpec, caches: &SweepCaches) -> CellMetrics {
        self.run_cell_in(spec, caches, &mut CellScratch::new())
    }

    /// Runs one cell against the shared state and caches, borrowing all
    /// simulation and settlement buffers from `scratch` — sweep workers
    /// hold one scratch each, so steady-state cell execution (market
    /// cells included) allocates (almost) nothing.
    pub fn run_cell_in(
        &self,
        spec: &ScenarioSpec,
        caches: &SweepCaches,
        scratch: &mut CellScratch,
    ) -> CellMetrics {
        self.run_cell_in_obs(spec, caches, scratch, &NoopRecorder)
    }

    /// [`run_cell_in`](SweepWorld::run_cell_in) with an observability
    /// recorder. Beyond the simulator's own phases/counters this books
    /// market settlement wall time to the `settle` phase, the
    /// settlement counters (`jobs_settled`, `ledger_txns`,
    /// `ledger_cas_retries`), and the cell's shared-cache hit count
    /// (each lookup served by [`SweepCaches`] instead of rebuilt).
    /// Results are bit-identical regardless of the recorder.
    pub fn run_cell_in_obs<R: Recorder>(
        &self,
        spec: &ScenarioSpec,
        caches: &SweepCaches,
        scratch: &mut CellScratch,
        obs: &R,
    ) -> CellMetrics {
        let population = self.population_for(spec.users);
        let trace = &population
            .traces
            .iter()
            .find(|(s, _)| *s == spec.workload_scale)
            .expect("scale prepared at build time")
            .1;
        let slice = population
            .fleets
            .iter()
            .find(|f| f.indices.as_slice() == spec.fleet.as_slice())
            .expect("fleet subset prepared at build time");
        // The replicate's intensity realization and (when the cell is a
        // market cell) its compiled posted prices: shared artifacts,
        // never re-derived per cell.
        let intensity = caches.realization(spec);
        let prices = spec.market_active().then(|| caches.prices(spec));
        let config = SimConfig {
            policy: spec.policy.to_policy(),
            decision_method: spec.method.to_method(),
            sim_year: spec.sim_year,
            users: spec.users,
            backfill_depth: spec.backfill_depth,
            // Only when the market actually drives decisions —
            // settlement-only cells must simulate identically to their
            // no-market counterparts.
            market: spec.market_drives_decisions().then(|| MarketInputs {
                prices: Arc::clone(prices.as_ref().expect("prices exist when market is active")),
                agents: caches.agents(spec),
                max_delay_hours: MAX_DELAY_HOURS,
                shift_threshold: SHIFT_THRESHOLD,
            }),
        };
        let metrics = run_cell_in_obs(
            trace,
            &slice.machines,
            &slice.table,
            &intensity,
            config,
            &mut scratch.arena,
            obs,
        );
        let capacity: f64 = slice
            .machines
            .iter()
            .map(|m| {
                if m.per_user {
                    m.spec.cores as f64 * spec.users as f64
                } else {
                    m.spec.cores as f64 * m.nodes as f64
                }
            })
            .sum();
        let mut cell = CellMetrics::of(&metrics, spec, capacity);
        if let Some(prices) = &prices {
            // Settle the run through the sharded store: the ledger on
            // the hot path, per cell, with banking of off-peak savings.
            let settle_watch = Stopwatch::<R>::start();
            let store = ShardedLedger::new(8);
            scratch.bank.reset(spec.banking_cap, BANK_DECAY);
            let run = settle_run_in(
                &metrics.outcomes,
                spec.method.cost_index(),
                prices,
                &store,
                &mut scratch.bank,
                BUDGET_FACTOR,
                &mut scratch.settle,
            );
            cell.posted_credits = run.posted_spent;
            cell.banked_credits = run.banked;
            if R::ENABLED {
                obs.phase_ns(Phase::Settle, settle_watch.elapsed_ns());
                obs.add(Counter::JobsSettled, metrics.outcomes.len() as u64);
                obs.add(Counter::LedgerTxns, store.transaction_count() as u64);
                obs.add(Counter::LedgerCasRetries, store.cas_retries());
            }
        }
        if R::ENABLED {
            obs.add(Counter::CellsRun, 1);
            // Lookups this cell served from the shared caches instead of
            // rebuilding: its intensity realization, plus the compiled
            // price table and agent population on market cells.
            let hits = 1 + spec.market_active() as u64 + spec.market_drives_decisions() as u64;
            obs.add(Counter::CacheHits, hits);
        }
        // Hand the outcome storage back so the next cell reuses it.
        scratch.arena.recycle(metrics);
        cell
    }
}

/// Per-worker reusable cell-execution state: the simulator arena plus
/// market settlement scratch (credit bank and the settlement loop's
/// index/string buffers). One lives on each sweep worker's stack for
/// the worker's lifetime, so after its first cell a worker's
/// steady-state allocation traffic is essentially zero — market cells
/// included (only the per-cell ledger itself still allocates).
pub struct CellScratch {
    /// The simulator's growable buffers.
    pub arena: SimArena,
    /// Settlement-loop index and string buffers.
    settle: SettleScratch,
    /// The banking state, `reset` per market cell.
    bank: CreditBank,
}

impl CellScratch {
    /// An empty scratch; buffers grow to the first cell's sizes and stay.
    pub fn new() -> CellScratch {
        CellScratch {
            arena: SimArena::new(),
            settle: SettleScratch::new(),
            bank: CreditBank::new(0.0, 0.0),
        }
    }
}

impl Default for CellScratch {
    fn default() -> Self {
        CellScratch::new()
    }
}

/// Key of one hourly-intensity realization: the fleet subset plus the
/// replicate seed and perturbation knobs (floats keyed by their bits —
/// axis values compare exactly, never arithmetically).
type RealizationKey = (Vec<usize>, u64, u64, u64);

fn realization_key(spec: &ScenarioSpec) -> RealizationKey {
    (
        spec.fleet.clone(),
        spec.seed,
        spec.intensity_scale.to_bits(),
        spec.intensity_jitter.to_bits(),
    )
}

/// Derived per-cell artifacts, deduplicated across the whole grid and
/// `Arc`-shared with every cell that needs them. Built in a parallel
/// prepass over the distinct keys the expanded cells reach, so workers
/// only ever read.
pub struct SweepCaches {
    realizations: HashMap<RealizationKey, Arc<Vec<HourlyTrace>>>,
    prices: HashMap<(RealizationKey, PriceSpec), Arc<PriceTable>>,
    agents: HashMap<(u32, u64), Arc<Vec<green_batchsim::MarketAgent>>>,
}

impl SweepCaches {
    /// Builds the realization / price-table / agent caches for `cells`,
    /// fanning the (independent) realizations out over `threads` workers.
    pub fn build(world: &SweepWorld, cells: &[Cell], threads: usize) -> SweepCaches {
        // Distinct realization keys, in first-seen (deterministic) order.
        let mut keys: Vec<RealizationKey> = Vec::new();
        let mut price_keys: Vec<(RealizationKey, PriceSpec)> = Vec::new();
        let mut agent_keys: Vec<(u32, u64)> = Vec::new();
        for cell in cells {
            let spec = &cell.spec;
            let key = realization_key(spec);
            if !keys.contains(&key) {
                keys.push(key.clone());
            }
            if spec.market_active() {
                let pkey = (key, spec.price_schedule);
                if !price_keys.contains(&pkey) {
                    price_keys.push(pkey);
                }
            }
            if spec.market_drives_decisions() {
                let akey = (spec.users, spec.elasticity.to_bits());
                if !agent_keys.contains(&akey) {
                    agent_keys.push(akey);
                }
            }
        }

        // Realizations are independent and a few milliseconds each:
        // claim-by-index across workers, exactly like cells.
        let slots: Vec<Mutex<Option<Arc<Vec<HourlyTrace>>>>> =
            keys.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let build_one = |key: &RealizationKey| -> Arc<Vec<HourlyTrace>> {
            let (fleet_indices, seed, scale_bits, jitter_bits) = key;
            let machines: Vec<FleetMachine> = fleet_indices
                .iter()
                .map(|&i| world.fleet[i].clone())
                .collect();
            let scale = f64::from_bits(*scale_bits);
            let jitter = f64::from_bits(*jitter_bits);
            let realization = intensity_for(&machines, *seed)
                .into_iter()
                .enumerate()
                .map(|(m, t)| {
                    if scale == 1.0 && jitter == 0.0 {
                        t
                    } else {
                        t.perturbed(
                            scale,
                            jitter,
                            seed ^ (m as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        )
                    }
                })
                .collect();
            Arc::new(realization)
        };
        let workers = threads.max(1).min(keys.len().max(1));
        if workers <= 1 {
            for (key, slot) in keys.iter().zip(&slots) {
                *slot.lock().expect("slot lock") = Some(build_one(key));
            }
        } else {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= keys.len() {
                            break;
                        }
                        let built = build_one(&keys[i]);
                        *slots[i].lock().expect("slot lock") = Some(built);
                    });
                }
            });
        }
        let realizations: HashMap<RealizationKey, Arc<Vec<HourlyTrace>>> = keys
            .into_iter()
            .zip(slots)
            .map(|(key, slot)| {
                let built = slot
                    .into_inner()
                    .expect("slot lock")
                    .expect("every realization built");
                (key, built)
            })
            .collect();

        let prices = price_keys
            .into_iter()
            .map(|(key, schedule)| {
                let realization = &realizations[&key];
                let table = Arc::new(price_table(realization, schedule));
                ((key, schedule), table)
            })
            .collect();

        let agents = agent_keys
            .into_iter()
            .map(|(users, elasticity_bits)| {
                let population = Arc::new(market_population(
                    users as usize,
                    world.agent_seed,
                    f64::from_bits(elasticity_bits),
                ));
                ((users, elasticity_bits), population)
            })
            .collect();

        SweepCaches {
            realizations,
            prices,
            agents,
        }
    }

    /// The shared intensity realization of a cell.
    pub fn realization(&self, spec: &ScenarioSpec) -> Arc<Vec<HourlyTrace>> {
        Arc::clone(
            self.realizations
                .get(&realization_key(spec))
                .expect("realization prepared in the cache prepass"),
        )
    }

    /// The shared compiled price table of a market cell.
    pub fn prices(&self, spec: &ScenarioSpec) -> Arc<PriceTable> {
        Arc::clone(
            self.prices
                .get(&(realization_key(spec), spec.price_schedule))
                .expect("price table prepared in the cache prepass"),
        )
    }

    /// The shared agent population of a market cell.
    pub fn agents(&self, spec: &ScenarioSpec) -> Arc<Vec<green_batchsim::MarketAgent>> {
        Arc::clone(
            self.agents
                .get(&(spec.users, spec.elasticity.to_bits()))
                .expect("agent population prepared in the cache prepass"),
        )
    }

    /// Number of distinct intensity realizations built.
    pub fn realization_count(&self) -> usize {
        self.realizations.len()
    }

    /// Number of distinct compiled price tables built.
    pub fn price_table_count(&self) -> usize {
        self.prices.len()
    }

    /// Number of distinct agent populations built.
    pub fn agent_population_count(&self) -> usize {
        self.agents.len()
    }

    /// Total distinct artifacts the prepass had to build — the sweep's
    /// cache *misses* (every per-cell lookup afterwards is a hit).
    pub fn artifact_count(&self) -> usize {
        self.realizations.len() + self.prices.len() + self.agents.len()
    }
}

/// Deterministic work counters of one sweep execution — what the perf
/// suite trends and the CI bench gate compares, instead of noisy wall
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Cells executed.
    pub cells: usize,
    /// Simulator events processed, summed over cells.
    pub events: u64,
    /// Scheduler release-list entries examined by backfill reservations,
    /// summed over cells.
    pub release_work: u64,
    /// Distinct intensity realizations derived (shared across cells).
    pub realizations: usize,
    /// Distinct posted-price tables compiled.
    pub price_tables: usize,
    /// Distinct agent populations sampled.
    pub agent_populations: usize,
}

/// Daily decay applied to banked savings in market cells.
const BANK_DECAY: f64 = 0.05;

/// Market-wide cap on any agent's submission delay.
const MAX_DELAY_HOURS: u32 = 24;

/// Base relative saving required before an agent shifts; an agent's
/// effective threshold is this over their elasticity, so the
/// `elasticities` axis genuinely grades how much of the population
/// responds (at 0.10, unit-elastic users need a 10 % posted saving).
const SHIFT_THRESHOLD: f64 = 0.10;

/// Per-user budget headroom over the mean posted demand in market
/// settlement (1.25 = 25 % slack; heavy users still hit the
/// `debit_up_to` clamp).
const BUDGET_FACTOR: f64 = 1.25;

/// Progress callback: `(cells_done, cells_total)` after each cell.
pub type ProgressFn = dyn Fn(usize, usize) + Sync;

/// The `/`-joined label a `--filter` substring is matched against.
pub fn cell_label(spec: &ScenarioSpec) -> String {
    spec.config_label().join("/")
}

/// The distinct values of one cell attribute, in first-seen order.
fn dedup_by<T: PartialEq>(cells: &[Cell], f: impl Fn(&Cell) -> T) -> Vec<T> {
    let mut values: Vec<T> = Vec::new();
    for cell in cells {
        let value = f(cell);
        if !values.contains(&value) {
            values.push(value);
        }
    }
    values
}

/// Validates a shard/cell range against the grid it indexes: in bounds,
/// ascending, and aligned to replicate groups (a configuration's
/// replicates must never straddle two workers — its CSV row aggregates
/// all of them).
pub(crate) fn check_range(
    range: &std::ops::Range<usize>,
    cells: usize,
    replicates: usize,
) -> std::io::Result<()> {
    let bad = |message: String| std::io::Error::new(std::io::ErrorKind::InvalidInput, message);
    if range.start > range.end || range.end > cells {
        return Err(bad(format!(
            "cell range {}..{} outside the grid's {cells} cells",
            range.start, range.end
        )));
    }
    if !range.start.is_multiple_of(replicates) || !range.end.is_multiple_of(replicates) {
        return Err(bad(format!(
            "cell range {}..{} is not aligned to replicate groups of {replicates} \
             (configuration boundaries fall on multiples of the seed count)",
            range.start, range.end
        )));
    }
    Ok(())
}

/// Keeps only the cells of configurations whose label matches `filter`
/// (case-sensitive substring; `None`/empty keeps everything).
pub(crate) fn filter_cells(cells: Vec<Cell>, filter: Option<&str>) -> Vec<Cell> {
    let Some(filter) = filter.filter(|f| !f.is_empty()) else {
        return cells;
    };
    cells
        .into_iter()
        .filter(|c| cell_label(&c.spec).contains(filter))
        .collect()
}

/// What a streamed sweep run reports once every row is flushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSummary {
    /// Grid configurations written (CSV rows).
    pub configs: usize,
    /// Cells executed (configs × replicates).
    pub cells: usize,
    /// Deterministic work counters of the run.
    pub stats: RunStats,
}

/// The parallel sweep driver.
pub struct SweepRunner {
    threads: usize,
}

impl Default for SweepRunner {
    fn default() -> Self {
        SweepRunner::new(0)
    }
}

impl SweepRunner {
    /// A runner fanning out over `threads` workers (`0` = one per
    /// available core).
    pub fn new(threads: usize) -> SweepRunner {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        SweepRunner { threads }
    }

    /// The worker count this runner fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs the sweep end to end: build shared world, execute every cell,
    /// aggregate replicates. Results are in expansion order regardless of
    /// scheduling.
    pub fn run(&self, sweep: &Sweep) -> SweepResults {
        self.run_with_progress(sweep, None)
    }

    /// [`run`](SweepRunner::run) with an optional progress callback.
    pub fn run_with_progress(&self, sweep: &Sweep, progress: Option<&ProgressFn>) -> SweepResults {
        self.run_filtered(sweep, None, progress)
    }

    /// Runs only the grid configurations whose label (the `/`-joined
    /// [`ScenarioSpec::config_label`]) contains `filter` — the
    /// iterate-on-one-axis workflow of `scenarios --filter`. A `None`
    /// (or empty) filter runs everything; matching configurations keep
    /// their full replicate sets and expansion order.
    pub fn run_filtered(
        &self,
        sweep: &Sweep,
        filter: Option<&str>,
        progress: Option<&ProgressFn>,
    ) -> SweepResults {
        self.run_collect(sweep, filter, progress).0
    }

    /// [`run_filtered`](SweepRunner::run_filtered), also returning the
    /// run's deterministic work counters.
    pub fn run_collect(
        &self,
        sweep: &Sweep,
        filter: Option<&str>,
        progress: Option<&ProgressFn>,
    ) -> (SweepResults, RunStats) {
        self.run_collect_obs(sweep, filter, progress, &NoopRecorder)
    }

    /// [`run_collect`](SweepRunner::run_collect) with an observability
    /// recorder: world/cache construction is booked to the `prepare`
    /// phase, cells record per-cell spans and the full phase/counter
    /// taxonomy (see [`SweepWorld::run_cell_in_obs`]). Results are
    /// bit-identical regardless of the recorder.
    pub fn run_collect_obs<R: Recorder>(
        &self,
        sweep: &Sweep,
        filter: Option<&str>,
        progress: Option<&ProgressFn>,
        obs: &R,
    ) -> (SweepResults, RunStats) {
        let prepare_watch = Stopwatch::<R>::start();
        let (world, cells, caches) = self.prepare(sweep, filter);
        if R::ENABLED {
            obs.phase_ns(Phase::Prepare, prepare_watch.elapsed_ns());
            obs.add(Counter::CacheMisses, caches.artifact_count() as u64);
        }
        let n = cells.len();
        let events = AtomicU64::new(0);
        let release_work = AtomicU64::new(0);
        let slots: Vec<Mutex<Option<CellMetrics>>> = (0..n).map(|_| Mutex::new(None)).collect();
        self.execute(
            &world,
            &caches,
            &cells,
            self.claim_window(sweep.seeds.len()),
            progress,
            &|index, metrics| {
                events.fetch_add(metrics.events as u64, Ordering::Relaxed);
                release_work.fetch_add(metrics.release_work, Ordering::Relaxed);
                *slots[index].lock().expect("slot lock") = Some(metrics);
            },
            obs,
        );
        let results: Vec<CellMetrics> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock")
                    .expect("every cell executed")
            })
            .collect();

        let replicates = sweep.seeds.len();
        let mut summaries = Vec::with_capacity(n / replicates.max(1));
        for chunk in results.chunks(replicates) {
            let config_spec = &cells[summaries.len() * replicates].spec;
            summaries.push(CellSummary::of(config_spec, chunk));
        }
        let stats = self.stats_of(&caches, n, events.into_inner(), release_work.into_inner());
        (
            SweepResults {
                name: sweep.name.clone(),
                replicates,
                cells: summaries,
            },
            stats,
        )
    }

    /// Runs the sweep, streaming aggregate CSV rows to `out` as each
    /// configuration's replicates complete, in expansion order — the
    /// grid never holds more than the in-flight cell results in memory,
    /// and the bytes written are identical to
    /// [`SweepResults::to_csv_string`] on the same sweep.
    pub fn run_streamed<W: Write + Send>(
        &self,
        sweep: &Sweep,
        filter: Option<&str>,
        progress: Option<&ProgressFn>,
        out: &mut W,
    ) -> std::io::Result<StreamSummary> {
        self.run_streamed_range(sweep, filter, None, true, progress, out)
    }

    /// [`run_streamed`](SweepRunner::run_streamed) restricted to a
    /// contiguous cell `range` of the (filtered) expansion order — the
    /// shard worker's execution primitive. The range must be aligned to
    /// replicate groups (CSV rows are per configuration) and inside the
    /// grid; world build, caches, and memory are all proportional to the
    /// range, not the grid, so a worker of a million-cell sweep only
    /// pays for its own slice. With `write_header = false` the header
    /// row is left to the caller (shard workers write it through their
    /// checkpointing writer).
    ///
    /// The rows streamed for `range` are byte-identical to the
    /// corresponding slice of a full single-process run — the guarantee
    /// `scenarios merge` builds on (`tests/shard_golden.rs`).
    pub fn run_streamed_range<W: Write + Send>(
        &self,
        sweep: &Sweep,
        filter: Option<&str>,
        range: Option<std::ops::Range<usize>>,
        write_header: bool,
        progress: Option<&ProgressFn>,
        out: &mut W,
    ) -> std::io::Result<StreamSummary> {
        self.run_streamed_range_obs(
            sweep,
            filter,
            range,
            write_header,
            progress,
            out,
            &NoopRecorder,
        )
    }

    /// [`run_streamed_range`](SweepRunner::run_streamed_range) with an
    /// observability recorder (see
    /// [`run_collect_obs`](SweepRunner::run_collect_obs); the streaming
    /// path additionally books aggregate-row rendering to the `csv`
    /// phase and counts `rows_flushed`). Output bytes are identical
    /// regardless of the recorder.
    #[allow(clippy::too_many_arguments)]
    pub fn run_streamed_range_obs<W: Write + Send, R: Recorder>(
        &self,
        sweep: &Sweep,
        filter: Option<&str>,
        range: Option<std::ops::Range<usize>>,
        write_header: bool,
        progress: Option<&ProgressFn>,
        out: &mut W,
        obs: &R,
    ) -> std::io::Result<StreamSummary> {
        let replicates = sweep.seeds.len().max(1);
        let cells: Vec<Cell> = match (filter.filter(|f| !f.is_empty()), &range) {
            // No filter: the range indexes the raw expansion order, so
            // only the assigned cells are ever materialized.
            (None, Some(range)) => {
                check_range(range, sweep.cell_count(), replicates)?;
                sweep.expand_range(range.clone())
            }
            (None, None) => sweep.expand(),
            // A filter re-indexes the grid: ranges address the filtered
            // expansion order (every worker derives the identical list).
            (Some(filter), range) => {
                let filtered = filter_cells(sweep.expand(), Some(filter));
                match range {
                    Some(range) => {
                        check_range(range, filtered.len(), replicates)?;
                        filtered[range.clone()].to_vec()
                    }
                    None => filtered,
                }
            }
        };
        self.run_streamed_cells(sweep, cells, write_header, progress, out, obs, &NoopChaos)
    }

    /// The streaming engine over an already-resolved cell list —
    /// [`run_streamed_range`](SweepRunner::run_streamed_range) after
    /// expansion/filtering/slicing. Crate-internal so `shard::run_shard`
    /// can resolve its filtered assignment exactly once instead of
    /// re-expanding the grid per invocation.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_streamed_cells<W: Write + Send, R: Recorder, C: Chaos>(
        &self,
        sweep: &Sweep,
        cells: Vec<Cell>,
        write_header: bool,
        progress: Option<&ProgressFn>,
        out: &mut W,
        obs: &R,
        chaos: &C,
    ) -> std::io::Result<StreamSummary> {
        sweep.validate().expect("invalid sweep");
        let replicates = sweep.seeds.len().max(1);
        let prepare_watch = Stopwatch::<R>::start();
        let (world, caches) = self.prepare_cells(sweep, &cells);
        if R::ENABLED {
            obs.phase_ns(Phase::Prepare, prepare_watch.elapsed_ns());
            obs.add(Counter::CacheMisses, caches.artifact_count() as u64);
        }
        let n = cells.len();
        // Write *and flush* the header before any cell runs: a consumer
        // tailing the stream (or a test asserting liveness) must see the
        // first bytes immediately, not after the writer's buffer fills
        // with row data — large grids used to sit silent for the whole
        // first buffer's worth of configurations.
        if write_header {
            out.write_all(green_bench::export::csv_line(&CSV_HEADERS).as_bytes())?;
            out.flush()?;
        }

        let events = AtomicU64::new(0);
        let release_work = AtomicU64::new(0);
        let sink = Mutex::new(StreamSink {
            replicates,
            cells: &cells,
            pending: HashMap::new(),
            reorder: ReorderBuffer::new(),
            out,
            error: None,
            obs,
            chaos,
        });
        self.execute(
            &world,
            &caches,
            &cells,
            self.claim_window(replicates),
            progress,
            &|index, metrics| {
                events.fetch_add(metrics.events as u64, Ordering::Relaxed);
                release_work.fetch_add(metrics.release_work, Ordering::Relaxed);
                sink.lock().expect("sink lock").offer(index, metrics);
            },
            obs,
        );
        let sink = sink.into_inner().expect("sink lock");
        if let Some(e) = sink.error {
            return Err(e);
        }
        debug_assert!(sink.pending.is_empty(), "incomplete configuration groups");
        debug_assert!(sink.reorder.is_empty(), "rows parked past the end");
        let configs = sink.reorder.committed();
        let stats = self.stats_of(&caches, n, events.into_inner(), release_work.into_inner());
        Ok(StreamSummary {
            configs,
            cells: n,
            stats,
        })
    }

    /// Expands, filters and prepares a sweep: shared world + caches for
    /// exactly the cells that will run.
    fn prepare(&self, sweep: &Sweep, filter: Option<&str>) -> (SweepWorld, Vec<Cell>, SweepCaches) {
        sweep.validate().expect("invalid sweep");
        let cells = filter_cells(sweep.expand(), filter);
        let (world, caches) = self.prepare_cells(sweep, &cells);
        (world, cells, caches)
    }

    /// Builds the shared world + caches for exactly `cells` — the
    /// filtered, range-restricted set that will actually run. The point
    /// of `--filter` (and of shard ranges) is that a narrow run must not
    /// pay for every population/scale/fleet of the full grid; the
    /// retained variants are bit-identical to the ones the full sweep
    /// would build (same seeds, same dedup).
    fn prepare_cells(&self, sweep: &Sweep, cells: &[Cell]) -> (SweepWorld, SweepCaches) {
        let mut needed = sweep.clone();
        needed.users = dedup_by(cells, |c| c.spec.users);
        needed.workload_scales = dedup_by(cells, |c| c.spec.workload_scale);
        needed.fleets = dedup_by(cells, |c| c.spec.fleet.clone());
        let world = SweepWorld::build(&needed);
        let caches = SweepCaches::build(&world, cells, self.threads);
        (world, caches)
    }

    fn stats_of(
        &self,
        caches: &SweepCaches,
        cells: usize,
        events: u64,
        release_work: u64,
    ) -> RunStats {
        RunStats {
            cells,
            events,
            release_work,
            realizations: caches.realization_count(),
            price_tables: caches.price_table_count(),
            agent_populations: caches.agent_population_count(),
        }
    }

    /// How far past the contiguously-offered prefix workers may claim:
    /// enough slack that nobody idles behind a slow cell (a few cells
    /// per worker, whole replicate groups at a time), small enough that
    /// the reorder buffer's memory stays a constant factor of the
    /// worker count rather than growing with the grid.
    fn claim_window(&self, replicates: usize) -> usize {
        (self.threads * 4 * replicates.max(1)).max(64)
    }

    /// Executes every cell, fanning out across workers; results are
    /// reported to `sink` keyed by expansion index (any thread, any
    /// order, but never more than `window` indices past the oldest
    /// unreported one). Each cell records one `cell` span on the
    /// recorder.
    #[allow(clippy::too_many_arguments)]
    fn execute<R: Recorder>(
        &self,
        world: &SweepWorld,
        caches: &SweepCaches,
        cells: &[Cell],
        window: usize,
        progress: Option<&ProgressFn>,
        sink: &(dyn Fn(usize, CellMetrics) + Sync),
        obs: &R,
    ) {
        let n = cells.len();
        let workers = self.threads.min(n.max(1));
        if workers <= 1 {
            let mut scratch = CellScratch::new();
            for (i, c) in cells.iter().enumerate() {
                let cell_watch = Stopwatch::<R>::start();
                let metrics = world.run_cell_in_obs(&c.spec, caches, &mut scratch, obs);
                if R::ENABLED {
                    obs.span_ns(SpanKind::Cell, cell_watch.elapsed_ns());
                }
                sink(i, metrics);
                if let Some(cb) = progress {
                    cb(i + 1, n);
                }
            }
            return;
        }
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let claims = ClaimWindow::new(window);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // One scratch per worker: every cell this thread
                    // claims reuses the same simulation and settlement
                    // buffers.
                    let mut scratch = CellScratch::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // Throttle: stay within the reorder window of
                        // the slowest outstanding cell.
                        claims.admit(i);
                        // Mark `i` offered even if the sink dies (an
                        // injected crash mid-commit): the claimants
                        // blocked behind it must run into the failure,
                        // not wait on it forever.
                        let offered = claims.completing(i);
                        let cell_watch = Stopwatch::<R>::start();
                        let metrics =
                            world.run_cell_in_obs(&cells[i].spec, caches, &mut scratch, obs);
                        if R::ENABLED {
                            obs.span_ns(SpanKind::Cell, cell_watch.elapsed_ns());
                        }
                        sink(i, metrics);
                        drop(offered);
                        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                        if let Some(cb) = progress {
                            cb(finished, n);
                        }
                    }
                });
            }
        });
    }
}

/// The streaming aggregation sink: collects a configuration's replicates
/// as workers finish them (any order), aggregates each completed group,
/// and commits CSV rows strictly in expansion order through a
/// [`ReorderBuffer`]. Memory held is the in-flight groups plus any
/// completed-but-out-of-order summaries — bounded by the runner's
/// [`ClaimWindow`], not the grid.
///
/// The row commit is the `parallel_commit` failpoint: it runs under the
/// sink lock and rows commit in strict config order, so `hit:N` targets
/// the Nth row of the output deterministically — on one worker or
/// sixteen.
struct StreamSink<'a, W: Write, R: Recorder, C: Chaos> {
    replicates: usize,
    cells: &'a [Cell],
    /// Partially-filled configuration groups, keyed by config index.
    pending: HashMap<usize, Vec<Option<CellMetrics>>>,
    /// Aggregated groups committing in config order.
    reorder: ReorderBuffer<CellSummary>,
    out: &'a mut W,
    error: Option<std::io::Error>,
    obs: &'a R,
    chaos: &'a C,
}

impl<W: Write, R: Recorder, C: Chaos> StreamSink<'_, W, R, C> {
    fn offer(&mut self, index: usize, metrics: CellMetrics) {
        let config = index / self.replicates;
        let group = self
            .pending
            .entry(config)
            .or_insert_with(|| vec![None; self.replicates]);
        group[index % self.replicates] = Some(metrics);
        if group.iter().any(Option::is_none) {
            return;
        }
        let group = self.pending.remove(&config).expect("group exists");
        let chunk: Vec<CellMetrics> = group.into_iter().map(|m| m.expect("full group")).collect();
        let spec = &self.cells[config * self.replicates].spec;
        let summary = CellSummary::of(spec, &chunk);
        let csv_watch = Stopwatch::<R>::start();
        let mut rows = 0u64;
        let Self {
            reorder,
            out,
            error,
            chaos,
            ..
        } = self;
        reorder.offer(config, summary, |_, summary| {
            rows += 1;
            if error.is_some() {
                return;
            }
            let row = green_bench::export::csv_line(&summary.csv_row());
            match probe(*chaos, Failpoint::ParallelCommit) {
                Ok(None) => {
                    if let Err(e) = out.write_all(row.as_bytes()) {
                        *error = Some(e);
                    }
                }
                Ok(Some(bytes)) => {
                    // Torn commit: the row's prefix reaches the writer
                    // (and through it the fragment on disk), then the
                    // worker dies — the resume path must truncate it.
                    let bytes = bytes.min(row.len());
                    let _ = out.write_all(&row.as_bytes()[..bytes]);
                    let _ = out.flush();
                    torn_crash(Failpoint::ParallelCommit, bytes);
                }
                Err(e) => *error = Some(e),
            }
        });
        if R::ENABLED && rows > 0 {
            self.obs.phase_ns(Phase::Csv, csv_watch.elapsed_ns());
            self.obs.add(Counter::RowsFlushed, rows);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{MethodSpec, PolicySpec};

    fn tiny_sweep() -> Sweep {
        let mut sweep = Sweep::new("runner-test");
        sweep.policies = vec![PolicySpec::Greedy, PolicySpec::Eft];
        sweep.methods = vec![MethodSpec::Eba];
        sweep.seeds = vec![1, 2];
        sweep
    }

    #[test]
    fn shared_world_dedupes_variants() {
        let mut sweep = tiny_sweep();
        sweep.workload_scales = vec![1.0, 0.5, 1.0];
        sweep.fleets = vec![vec![0, 1, 2, 3], vec![0, 2], vec![0, 2]];
        sweep.users = vec![24, 48, 24];
        let world = SweepWorld::build(&sweep);
        assert_eq!(world.fleet.len(), 4);
        assert_eq!(world.populations.len(), 2);
        for population in &world.populations {
            assert_eq!(population.traces.len(), 2);
            assert_eq!(population.fleets.len(), 2);
            assert_eq!(population.table.machine_count(), 4);
        }
    }

    #[test]
    fn caches_dedupe_realizations_and_prices() {
        let mut sweep = tiny_sweep();
        // 2 policies × 1 method × 2 schedules × 2 seeds = 8 cells, but
        // only 2 distinct realizations (the seeds) and 4 price tables
        // (realization × schedule); one agent population (users ×
        // elasticity is a singleton).
        sweep.policies = vec![PolicySpec::Greedy, PolicySpec::Adaptive];
        sweep.price_schedules = vec![
            PriceSpec::parse("carbon:0.5").unwrap(),
            PriceSpec::parse("tou:0.25").unwrap(),
        ];
        sweep.elasticities = vec![1.0];
        let cells = sweep.expand();
        assert_eq!(cells.len(), 8);
        let world = SweepWorld::build(&sweep);
        let caches = SweepCaches::build(&world, &cells, 2);
        assert_eq!(caches.realization_count(), 2);
        assert_eq!(caches.price_table_count(), 4);
        assert_eq!(caches.agent_population_count(), 1);
        // Cells sharing a seed share the realization allocation itself.
        let a = caches.realization(&cells[0].spec);
        let b = caches.realization(&cells[4].spec);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn users_axis_varies_the_submitting_population() {
        let mut sweep = tiny_sweep();
        sweep.policies = vec![PolicySpec::Greedy];
        sweep.methods = vec![MethodSpec::Eba];
        sweep.users = vec![24, 96];
        sweep.seeds = vec![1];
        let results = SweepRunner::new(0).run(&sweep);
        assert_eq!(results.cells.len(), 2);
        let (small, large) = (&results.cells[0], &results.cells[1]);
        assert_eq!(small.spec.users, 24);
        assert_eq!(large.spec.users, 96);
        // Different populations submit genuinely different workloads:
        // the same demand spread over 4x the users changes energy,
        // credits and waits, not just the utilization denominator.
        assert_ne!(small.energy_mwh.mean, large.energy_mwh.mean);
        assert_ne!(small.credits.mean, large.credits.mean);
    }

    #[test]
    fn runner_aggregates_in_expansion_order() {
        let sweep = tiny_sweep();
        let results = SweepRunner::new(2).run(&sweep);
        assert_eq!(results.cells.len(), 2);
        assert_eq!(results.replicates, 2);
        assert_eq!(results.cells[0].spec.policy, PolicySpec::Greedy);
        assert_eq!(results.cells[1].spec.policy, PolicySpec::Eft);
        for cell in &results.cells {
            assert_eq!(cell.completed.n, 2);
            assert!(cell.completed.mean > 0.0);
            assert!(cell.energy_mwh.mean > 0.0);
            assert!(cell.credits.mean > 0.0);
            assert!(cell.utilization.mean > 0.0 && cell.utilization.mean <= 1.0);
        }
    }

    #[test]
    fn filtered_runs_match_the_full_sweep() {
        let sweep = tiny_sweep();
        let full = SweepRunner::new(1).run(&sweep);
        // Filtering to one policy reproduces that configuration's
        // aggregate bit for bit (the narrowed world builds the same
        // shared artifacts).
        let filtered = SweepRunner::new(1).run_filtered(&sweep, Some("eft/"), None);
        assert_eq!(filtered.cells.len(), 1);
        assert_eq!(filtered.cells[0], full.cells[1]);
        // A filter that matches nothing runs nothing.
        let none = SweepRunner::new(1).run_filtered(&sweep, Some("no-such-cell"), None);
        assert!(none.cells.is_empty());
    }

    #[test]
    fn run_collect_reports_work_counters() {
        let sweep = tiny_sweep();
        let (results, stats) = SweepRunner::new(2).run_collect(&sweep, None, None);
        assert_eq!(stats.cells, 4);
        assert_eq!(stats.realizations, 2, "one per replicate seed");
        assert_eq!(stats.price_tables, 0, "no market axes");
        assert_eq!(stats.agent_populations, 0);
        // Every completed job contributes an arrival and a finish.
        let completed: f64 = results.cells.iter().map(|c| c.completed.mean * 2.0).sum();
        assert!(stats.events as f64 >= completed);
    }

    #[test]
    fn banking_axis_does_not_perturb_the_simulation() {
        // The banking cap is settlement-only: a greedy/flat-price cell
        // with banking enabled must place, time, and charge every job
        // exactly like its no-market twin — only the settlement columns
        // may differ.
        let mut sweep = tiny_sweep();
        sweep.policies = vec![PolicySpec::Greedy];
        sweep.methods = vec![MethodSpec::Cba];
        sweep.seeds = vec![1];
        sweep.banking_caps = vec![0.0, 50.0];
        let results = SweepRunner::new(1).run(&sweep);
        let (off, on) = (&results.cells[0], &results.cells[1]);
        assert_eq!(off.energy_mwh, on.energy_mwh);
        assert_eq!(off.attr_carbon_kg, on.attr_carbon_kg);
        assert_eq!(off.mean_wait_h, on.mean_wait_h);
        assert_eq!(off.credits, on.credits);
        assert_eq!(off.posted_credits.mean, 0.0, "no market, no settlement");
        assert!(on.posted_credits.mean > 0.0, "banking cell settles");
        assert_eq!(on.banked_credits.mean, 0.0, "flat prices bank nothing");
    }

    #[test]
    fn replicate_seeds_actually_vary_outcomes() {
        let mut sweep = tiny_sweep();
        sweep.policies = vec![PolicySpec::Greedy];
        // CBA quotes depend on the intensity realization, so replicate
        // seeds must produce spread.
        sweep.methods = vec![MethodSpec::Cba];
        sweep.seeds = vec![1, 2, 3];
        let results = SweepRunner::new(0).run(&sweep);
        let cell = &results.cells[0];
        assert!(cell.credits.stddev > 0.0, "replicates should differ");
        assert!(cell.credits.ci95 > 0.0);
    }

    #[test]
    fn streamed_rows_match_the_in_memory_csv() {
        let sweep = tiny_sweep();
        let in_memory = SweepRunner::new(1).run(&sweep).to_csv_string();
        for threads in [1, 4] {
            let mut streamed = Vec::new();
            let summary = SweepRunner::new(threads)
                .run_streamed(&sweep, None, None, &mut streamed)
                .expect("stream to a Vec cannot fail");
            assert_eq!(summary.configs, 2);
            assert_eq!(summary.cells, 4);
            assert_eq!(String::from_utf8(streamed).unwrap(), in_memory);
        }
    }
}
