//! Figure 4: application profiles measured through the platform.

use criterion::{criterion_group, criterion_main, Criterion};
use green_access::{GreenAccess, Placement, PlatformConfig};
use green_bench::experiments::platform::figure4;
use green_bench::render;
use green_machines::{AppId, TestbedMachine};
use green_units::Credits;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = figure4();
    let printed: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.to_string(),
                r.machine.to_string(),
                format!("{:.2}", r.runtime_s),
                format!("{:.1}", r.energy_j),
            ]
        })
        .collect();
    println!(
        "{}",
        render::table(
            "Figure 4 (regenerated, platform-measured)",
            &["App", "Machine", "Runtime (s)", "Energy (J)"],
            &printed
        )
    );
    // Cascade Lake uses the most energy for every app.
    for app in AppId::ALL {
        let cl = rows
            .iter()
            .find(|r| r.app == app && r.machine == TestbedMachine::CascadeLake)
            .unwrap();
        for r in rows.iter().filter(|r| r.app == app) {
            if r.machine != TestbedMachine::CascadeLake {
                assert!(cl.energy_j > r.energy_j * 0.95, "{app} on {}", r.machine);
            }
        }
    }

    // Time a full invocation round-trip (quote → execute → settle).
    let mut platform = GreenAccess::new(PlatformConfig::default());
    let token = platform.register_user("bench", Credits::new(1.0e15));
    let mut group = c.benchmark_group("fig4");
    group.sample_size(20);
    group.bench_function("platform_invocation", |b| {
        b.iter(|| {
            black_box(
                platform
                    .invoke(&token, AppId::Mst, 1.0, Placement::Cheapest)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
