//! Exchange rates between accounting methods.
//!
//! Credits have method-specific units, so "granting an equivalent
//! allocation" under a different method (Figure 6; game version V3)
//! requires a conversion. Following how ACCESS sets machine exchange
//! rates, the rate is estimated empirically: price a reference workload
//! sample under both methods and take the ratio of totals.

use green_units::Credits;
use serde::{Deserialize, Serialize};

use crate::context::ChargeContext;
use crate::methods::MethodKind;

/// An empirical conversion factor from one method's credits to another's.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExchangeRate {
    /// Source method.
    pub from: MethodKind,
    /// Target method.
    pub to: MethodKind,
    /// Multiply `from`-credits by this to get `to`-credits.
    pub rate: f64,
}

impl ExchangeRate {
    /// Estimates the rate over a sample of charge contexts (e.g. a recent
    /// window of completed jobs). Returns `None` when the sample prices to
    /// zero under *either* method: a zero source total leaves the ratio
    /// undefined, and a zero target total would produce a rate of 0 that
    /// silently destroys any balance converted through it.
    pub fn estimate(from: MethodKind, to: MethodKind, sample: &[ChargeContext]) -> Option<Self> {
        let total_from: f64 = sample.iter().map(|c| from.charge(c).value()).sum();
        let total_to: f64 = sample.iter().map(|c| to.charge(c).value()).sum();
        if total_from <= 0.0 || total_to <= 0.0 || !total_to.is_finite() {
            return None;
        }
        Some(ExchangeRate {
            from,
            to,
            rate: total_to / total_from,
        })
    }

    /// Converts an amount of `from`-credits.
    pub fn convert(&self, amount: Credits) -> Credits {
        amount * self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use green_units::{Energy, Power, TimeSpan};

    fn sample() -> Vec<ChargeContext> {
        (1..=10)
            .map(|i| {
                ChargeContext::new(
                    Energy::from_joules(100.0 * i as f64),
                    TimeSpan::from_secs(10.0 * i as f64),
                )
                .with_cores(8)
                .with_provisioned(Power::from_watts(100.0), 0.5)
            })
            .collect()
    }

    #[test]
    fn runtime_to_energy_rate() {
        let sample = sample();
        let rate =
            ExchangeRate::estimate(MethodKind::Runtime, MethodKind::Energy, &sample).unwrap();
        // Total runtime credits: sum(10i*8) = 4400 core-s. Energy: 5500 J.
        assert!((rate.rate - 5500.0 / 4400.0).abs() < 1e-9);
        let converted = rate.convert(Credits::new(880.0));
        assert!((converted.value() - 1100.0).abs() < 1e-9);
    }

    #[test]
    fn round_trip_is_identity() {
        let sample = sample();
        let ab = ExchangeRate::estimate(MethodKind::Runtime, MethodKind::eba(), &sample).unwrap();
        let ba = ExchangeRate::estimate(MethodKind::eba(), MethodKind::Runtime, &sample).unwrap();
        assert!((ab.rate * ba.rate - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_source_rejected() {
        let empty: Vec<ChargeContext> = Vec::new();
        assert!(ExchangeRate::estimate(MethodKind::Runtime, MethodKind::Cba, &empty).is_none());
    }

    #[test]
    fn zero_target_rejected() {
        // Jobs that ran (positive runtime) but drew no measured energy:
        // Runtime prices them fine, Energy prices them to zero. A rate of
        // 0 here would wipe out any balance converted through it.
        let sample: Vec<ChargeContext> = (1..=4)
            .map(|i| {
                ChargeContext::new(
                    Energy::from_joules(0.0),
                    TimeSpan::from_secs(10.0 * i as f64),
                )
                .with_cores(8)
            })
            .collect();
        let total: f64 = sample
            .iter()
            .map(|c| MethodKind::Runtime.charge(c).value())
            .sum();
        assert!(total > 0.0, "source method must price the sample");
        assert!(
            ExchangeRate::estimate(MethodKind::Runtime, MethodKind::Energy, &sample).is_none(),
            "a zero target total must reject the rate, not produce 0"
        );
    }
}
