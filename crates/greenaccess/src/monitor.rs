//! The platform-side monitor thread: the Faust-consumer stand-in.
//!
//! Consumes the `telemetry` topic, maintains one
//! [`green_telemetry::EndpointMonitor`] per endpoint (online power-model
//! fits + per-task disaggregation), and publishes a
//! [`green_telemetry::TaskEnergyReport`] on the `reports` topic whenever
//! an endpoint marks a task done.

use green_telemetry::{Bus, EndpointMonitor};
use green_units::Power;
use std::thread::JoinHandle;

use crate::PlatformMessage;

/// Handle to the monitor thread.
pub struct MonitorHandle {
    bus: Bus<PlatformMessage>,
    thread: Option<JoinHandle<()>>,
}

impl MonitorHandle {
    /// Spawns the monitor for endpoints with the given idle powers
    /// (index-aligned with the platform's endpoint list).
    pub fn spawn(bus: Bus<PlatformMessage>, idle_powers: Vec<Power>, refit_every: u32) -> Self {
        let sub = bus.subscribe("telemetry");
        let thread = {
            let bus = bus.clone();
            std::thread::Builder::new()
                .name("green-access-monitor".into())
                .spawn(move || {
                    let mut monitors: Vec<EndpointMonitor> = idle_powers
                        .into_iter()
                        .map(|idle| EndpointMonitor::new(idle, refit_every))
                        .collect();
                    while let Some(message) = sub.recv() {
                        match message {
                            PlatformMessage::Telemetry { endpoint, window } => {
                                monitors[endpoint].ingest(&window);
                            }
                            PlatformMessage::TaskDone { endpoint, task } => {
                                if let Some(report) = monitors[endpoint].finish_task(task) {
                                    bus.publish(
                                        "reports",
                                        PlatformMessage::Report { endpoint, report },
                                    );
                                }
                            }
                            PlatformMessage::Report { .. } => {}
                            PlatformMessage::Shutdown => break,
                        }
                    }
                })
                .expect("spawn monitor thread")
        };
        MonitorHandle {
            bus,
            thread: Some(thread),
        }
    }
}

impl Drop for MonitorHandle {
    fn drop(&mut self) {
        // The monitor holds a bus handle itself, so its subscription can
        // never observe a disconnect — shut it down explicitly. The
        // platform drops its endpoints first (field order), so all
        // telemetry is already queued ahead of this marker.
        self.bus.publish("telemetry", PlatformMessage::Shutdown);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{EndpointHandle, ExecuteRequest};
    use green_machines::{AppId, TestbedMachine};
    use green_telemetry::TaskId;
    use green_units::TimeSpan;

    #[test]
    fn monitor_reports_attributed_energy() {
        let bus: Bus<PlatformMessage> = Bus::new();
        let reports = bus.subscribe("reports");
        let machine = TestbedMachine::IceLake;
        let idle = machine.spec().idle_power;
        let _monitor = {
            // Keep handles in a scope so drops join the threads at the end.
            let monitor = MonitorHandle::spawn(bus.clone(), vec![idle], 8);
            let endpoint =
                EndpointHandle::spawn(0, machine, bus.clone(), TimeSpan::from_secs(0.5), 0.0, 3);
            // Several invocations so the model sees varied windows.
            for i in 0..6 {
                endpoint.execute(ExecuteRequest {
                    task: TaskId(i),
                    app: AppId::Cholesky,
                    scale: 1.0,
                });
            }
            // Collect the six reports.
            let mut got = 0;
            while got < 6 {
                if let Some(PlatformMessage::Report { report, .. }) = reports.recv() {
                    got += 1;
                    // Cholesky on Ice Lake: 19.8 J over 4.6 s. The first
                    // window seeds the RAPL baseline, so the very first
                    // report may undercount by one window.
                    let e = report.energy.as_joules();
                    assert!(e > 10.0 && e < 30.0, "attributed {e:.1} J, expected ≈19.8");
                }
            }
            (monitor, endpoint)
        };
    }
}
