//! The `green-access` command-line client.

use green_access::cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::parse(&args) {
        Ok(command) => match cli::execute(command) {
            Ok(output) => print!("{output}"),
            Err(message) => {
                eprintln!("error: {message}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n\n{}", cli::USAGE);
            std::process::exit(2);
        }
    }
}
