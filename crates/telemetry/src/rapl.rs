//! Simulated RAPL (Running Average Power Limit) energy counters.
//!
//! Real RAPL exposes a cumulative energy counter in micro-joules that wraps
//! at 32 bits (≈4.3 kJ — minutes at node power). The simulator reproduces
//! both the cumulative semantics and the wrap so consumers must handle it
//! the way production monitors do.

use green_units::{Energy, Power, TimePoint, TimeSpan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The wrap modulus of the RAPL energy counter: 2^32 µJ.
pub const RAPL_WRAP_UJ: u64 = 1 << 32;

/// A cumulative package-energy reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaplReading {
    /// Cumulative energy in µJ, modulo [`RAPL_WRAP_UJ`].
    pub cumulative_uj: u64,
}

impl RaplReading {
    /// Energy consumed since `earlier`, assuming at most one wrap. This is
    /// the standard RAPL delta idiom.
    pub fn delta_since(self, earlier: RaplReading) -> Energy {
        let delta_uj = if self.cumulative_uj >= earlier.cumulative_uj {
            self.cumulative_uj - earlier.cumulative_uj
        } else {
            RAPL_WRAP_UJ - earlier.cumulative_uj + self.cumulative_uj
        };
        Energy::from_joules(delta_uj as f64 / 1.0e6)
    }
}

/// Simulates the package-energy counter of one node.
///
/// Driven by `advance(power, span)`: the simulator integrates the supplied
/// power over the span, adds multiplicative measurement noise, and advances
/// the wrapped counter.
#[derive(Debug, Clone)]
pub struct RaplSimulator {
    counter_uj: u64,
    noise_rel: f64,
    rng: StdRng,
    last_t: TimePoint,
}

impl RaplSimulator {
    /// Builds a simulator with `noise_rel` relative (1-sigma) measurement
    /// noise. RAPL is accurate to a few percent; 0.01 is typical.
    pub fn new(seed: u64, noise_rel: f64) -> Self {
        RaplSimulator {
            counter_uj: 0,
            noise_rel,
            rng: StdRng::seed_from_u64(seed),
            last_t: TimePoint::EPOCH,
        }
    }

    /// Integrates `power` over `span` and returns the new reading at
    /// `self.last_t + span`.
    pub fn advance(&mut self, power: Power, span: TimeSpan) -> RaplReading {
        let noise: f64 = 1.0 + self.noise_rel * self.gauss();
        let energy_uj = (power * span).as_joules() * 1.0e6 * noise.max(0.0);
        self.counter_uj = (self.counter_uj + energy_uj.max(0.0) as u64) % RAPL_WRAP_UJ;
        self.last_t += span;
        RaplReading {
            cumulative_uj: self.counter_uj,
        }
    }

    /// Current virtual time of the counter.
    pub fn now(&self) -> TimePoint {
        self.last_t
    }

    /// The current reading without advancing.
    pub fn reading(&self) -> RaplReading {
        RaplReading {
            cumulative_uj: self.counter_uj,
        }
    }

    fn gauss(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_without_wrap() {
        let a = RaplReading {
            cumulative_uj: 1_000_000,
        };
        let b = RaplReading {
            cumulative_uj: 3_500_000,
        };
        assert!((b.delta_since(a).as_joules() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn delta_across_wrap() {
        let a = RaplReading {
            cumulative_uj: RAPL_WRAP_UJ - 500_000,
        };
        let b = RaplReading {
            cumulative_uj: 500_000,
        };
        assert!((b.delta_since(a).as_joules() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn simulator_integrates_power() {
        let mut sim = RaplSimulator::new(7, 0.0);
        let start = sim.reading();
        let r = sim.advance(Power::from_watts(100.0), TimeSpan::from_secs(10.0));
        assert!((r.delta_since(start).as_joules() - 1000.0).abs() < 1e-3);
        assert!((sim.now().as_secs() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn simulator_wraps_eventually() {
        let mut sim = RaplSimulator::new(7, 0.0);
        let mut wrapped = false;
        let mut prev = sim.reading();
        // 4.3 kJ wrap: 150 W × 20 s = 3 kJ windows stay below the modulus
        // (the delta idiom only tolerates a single wrap) but wrap the
        // counter every other window.
        for _ in 0..1000 {
            let r = sim.advance(Power::from_watts(150.0), TimeSpan::from_secs(20.0));
            if r.cumulative_uj < prev.cumulative_uj {
                wrapped = true;
                // The delta idiom recovers the true 3 kJ window across the
                // wrap.
                assert!((r.delta_since(prev).as_joules() - 3000.0).abs() < 10.0);
            }
            prev = r;
        }
        assert!(wrapped, "counter should wrap in a long run");
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let mut a = RaplSimulator::new(9, 0.05);
        let mut b = RaplSimulator::new(9, 0.05);
        for _ in 0..10 {
            let ra = a.advance(Power::from_watts(200.0), TimeSpan::from_secs(1.0));
            let rb = b.advance(Power::from_watts(200.0), TimeSpan::from_secs(1.0));
            assert_eq!(ra, rb);
        }
    }
}
