//! Cross-crate accounting invariants: the same contexts priced through
//! different layers must agree, and exchange-rate conversions must make
//! allocations comparable across methods.

use green_accounting::{ChargeContext, ExchangeRate, MethodKind};
use green_carbon::{attribute_job, GridRegion, IntensitySource};
use green_machines::{AppId, AppProfile, TestbedMachine, TESTBED_YEAR};
use green_units::{Credits, TimePoint};

fn contexts() -> Vec<ChargeContext> {
    let intensity = GridRegion::UsMidwest.trace(3, 30);
    TestbedMachine::ALL
        .iter()
        .flat_map(|&machine| {
            let intensity = &intensity;
            AppId::ALL.iter().map(move |&app| {
                let spec = machine.spec();
                let profile = AppProfile::of(app).on(machine);
                ChargeContext::new(profile.energy, profile.runtime)
                    .with_cores(app.cores())
                    .with_provisioned(
                        spec.slice_tdp(app.cores()),
                        spec.provisioned_share(app.cores()),
                    )
                    .with_peak(spec.cpu.peak_per_thread)
                    .with_carbon(
                        intensity.intensity_at(TimePoint::from_hours(12.0)),
                        spec.carbon_rate(TESTBED_YEAR),
                    )
            })
        })
        .collect()
}

#[test]
fn cba_charge_equals_attribution_total() {
    for ctx in contexts() {
        let charge = MethodKind::Cba.charge(&ctx).value();
        let footprint = attribute_job(
            ctx.facility_energy(),
            ctx.carbon_intensity,
            ctx.duration,
            ctx.carbon_rate,
            ctx.provisioned_share,
        );
        assert!((charge - footprint.total().as_grams()).abs() < 1e-9);
    }
}

#[test]
fn eba_dominates_half_energy_charge() {
    // EBA ≥ Energy/2 always (the TDP term is non-negative).
    for ctx in contexts() {
        let eba = MethodKind::eba().charge(&ctx).value();
        let energy = MethodKind::Energy.charge(&ctx).value();
        assert!(eba + 1e-12 >= energy / 2.0);
    }
}

#[test]
fn exchange_rates_compose() {
    let sample = contexts();
    let rt_to_eba =
        ExchangeRate::estimate(MethodKind::Runtime, MethodKind::eba(), &sample).unwrap();
    let eba_to_cba = ExchangeRate::estimate(MethodKind::eba(), MethodKind::Cba, &sample).unwrap();
    let rt_to_cba = ExchangeRate::estimate(MethodKind::Runtime, MethodKind::Cba, &sample).unwrap();
    let composed = rt_to_eba.rate * eba_to_cba.rate;
    assert!(
        (composed - rt_to_cba.rate).abs() / rt_to_cba.rate < 1e-9,
        "rates must compose: {composed} vs {}",
        rt_to_cba.rate
    );
    // Round-trip through credits.
    let credits = Credits::new(1_000.0);
    let there = rt_to_cba.convert(credits);
    let back = ExchangeRate::estimate(MethodKind::Cba, MethodKind::Runtime, &sample)
        .unwrap()
        .convert(there);
    assert!((back.value() - 1_000.0).abs() < 1e-6);
}

#[test]
fn methods_disagree_on_the_best_machine() {
    // The paper's premise: Peak and EBA rank machines differently for
    // Cholesky. If they agreed, impact-based accounting would change
    // nothing.
    let cholesky: Vec<ChargeContext> = TestbedMachine::ALL
        .iter()
        .map(|&machine| {
            let spec = machine.spec();
            let profile = AppProfile::of(AppId::Cholesky).on(machine);
            ChargeContext::new(profile.energy, profile.runtime)
                .with_cores(8)
                .with_provisioned(spec.slice_tdp(8), spec.provisioned_share(8))
                .with_peak(spec.cpu.peak_per_thread)
        })
        .collect();
    let argmin = |kind: MethodKind| {
        (0..cholesky.len())
            .min_by(|&a, &b| {
                kind.charge(&cholesky[a])
                    .value()
                    .total_cmp(&kind.charge(&cholesky[b]).value())
            })
            .unwrap()
    };
    assert_ne!(argmin(MethodKind::eba()), argmin(MethodKind::Peak));
}
