//! Property tests for the accounting methods.

use green_accounting::{ChargeContext, MethodKind};
use green_units::{CarbonIntensity, CarbonRate, Energy, Power, TimeSpan};
use proptest::prelude::*;

fn arb_context() -> impl Strategy<Value = ChargeContext> {
    (
        0.0..1.0e7f64,  // energy J
        0.1..1.0e5f64,  // duration s
        1u32..1024,     // cores
        0.0..2000.0f64, // provisioned TDP W
        0.0..1.0f64,    // share
        1.0..5000.0f64, // peak per core
        0.0..1500.0f64, // intensity g/kWh
        0.0..500.0f64,  // carbon rate g/h
    )
        .prop_map(|(e, d, cores, tdp, share, peak, intensity, rate)| {
            ChargeContext::new(Energy::from_joules(e), TimeSpan::from_secs(d))
                .with_cores(cores)
                .with_provisioned(Power::from_watts(tdp), share)
                .with_peak(peak)
                .with_carbon(
                    CarbonIntensity::from_g_per_kwh(intensity),
                    CarbonRate::from_g_per_hour(rate),
                )
        })
}

proptest! {
    /// Eq. 1 always lands between the measured energy and the potential
    /// (TDP) energy — it is their average.
    #[test]
    fn eba_between_energy_and_potential(ctx in arb_context()) {
        let eba = MethodKind::eba().charge(&ctx).value();
        let e = ctx.energy.as_joules();
        let potential = ctx.provisioned_tdp.as_watts() * ctx.duration.as_secs();
        let lo = e.min(potential);
        let hi = e.max(potential);
        prop_assert!(eba >= lo / 2.0 + lo / 2.0 - 1e-6);
        prop_assert!(eba >= lo - 1e-6 * hi.max(1.0));
        prop_assert!(eba <= hi + 1e-6 * hi.max(1.0));
    }

    /// All five methods are non-negative.
    #[test]
    fn charges_non_negative(ctx in arb_context()) {
        for kind in MethodKind::ALL {
            prop_assert!(kind.charge(&ctx).value() >= 0.0, "{kind}");
        }
    }

    /// More energy never costs less, for every method.
    #[test]
    fn monotone_in_energy(ctx in arb_context(), extra in 0.0..1.0e6f64) {
        let mut more = ctx;
        more.energy = ctx.energy + Energy::from_joules(extra);
        for kind in MethodKind::ALL {
            prop_assert!(
                kind.charge(&more).value() >= kind.charge(&ctx).value() - 1e-9,
                "{kind}"
            );
        }
    }

    /// Longer occupancy never costs less, for every method.
    #[test]
    fn monotone_in_duration(ctx in arb_context(), extra in 0.0..1.0e4f64) {
        let mut longer = ctx;
        longer.duration = ctx.duration + TimeSpan::from_secs(extra);
        for kind in MethodKind::ALL {
            prop_assert!(
                kind.charge(&longer).value() >= kind.charge(&ctx).value() - 1e-9,
                "{kind}"
            );
        }
    }

    /// CBA is monotone in grid intensity and embodied rate.
    #[test]
    fn cba_monotone_in_carbon_terms(ctx in arb_context(), di in 0.0..500.0f64, dr in 0.0..100.0f64) {
        let base = MethodKind::Cba.charge(&ctx).value();
        let mut dirtier = ctx;
        dirtier.carbon_intensity = ctx.carbon_intensity + CarbonIntensity::from_g_per_kwh(di);
        prop_assert!(MethodKind::Cba.charge(&dirtier).value() >= base - 1e-9);
        let mut newer = ctx;
        newer.carbon_rate = ctx.carbon_rate + CarbonRate::from_g_per_hour(dr);
        prop_assert!(MethodKind::Cba.charge(&newer).value() >= base - 1e-9);
    }

    /// EBA with β = 0 is exactly half the Energy charge (PUE = 1 here).
    #[test]
    fn eba_beta_zero_degenerates(ctx in arb_context()) {
        let eba0 = MethodKind::Eba { beta: 0.0 }.charge(&ctx).value();
        let energy = MethodKind::Energy.charge(&ctx).value();
        prop_assert!((eba0 - energy / 2.0).abs() <= energy.max(1.0) * 1e-12);
    }

    /// Scaling energy and duration together scales Runtime/Energy/EBA
    /// linearly (they are degree-1 homogeneous in the job).
    #[test]
    fn linear_methods_are_homogeneous(ctx in arb_context(), k in 0.1..10.0f64) {
        let mut scaled = ctx;
        scaled.energy = ctx.energy * k;
        scaled.duration = ctx.duration * k;
        for kind in [MethodKind::Runtime, MethodKind::Energy, MethodKind::eba()] {
            let a = kind.charge(&ctx).value();
            let b = kind.charge(&scaled).value();
            prop_assert!((b - k * a).abs() <= (k * a).abs() * 1e-9 + 1e-9, "{kind}");
        }
    }
}
