//! Property tests for the orchestrator's work ledger: any sequence of
//! work-stealing splits applied to `shard_ranges`' initial partition
//! leaves the tasks a disjoint exact cover of `0..total_cells`, and
//! running the fragment ranges through `run_shard` + `merge_shards`
//! tiles back into bytes identical to the unsharded `--stream` run —
//! fault-tolerant scheduling is never allowed to buy a different
//! answer.

use std::path::PathBuf;

use green_scenarios::{
    merge_shards, run_shard, MethodSpec, Plan, PolicySpec, ShardAssignment, ShardJob, Sweep,
    SweepRunner,
};
use proptest::prelude::*;

/// Applies a pseudo-random split sequence to a plan: each step picks a
/// task and a config-aligned interior cut from the `choices` stream.
/// Returns how many splits actually landed (some choices miss — a
/// too-small task has no interior cut).
fn apply_splits(plan: &mut Plan, choices: &[(usize, usize)]) -> usize {
    let mut applied = 0;
    for &(task_choice, cut_choice) in choices {
        let id = task_choice % plan.tasks.len();
        let cells = plan.tasks[id].cells.clone();
        let configs = (cells.end - cells.start) / plan.replicates;
        if configs < 2 {
            continue; // no interior config boundary to cut at
        }
        let cut = cells.start + (1 + cut_choice % (configs - 1)) * plan.replicates;
        plan.split(id, cut).expect("aligned interior cut");
        applied += 1;
    }
    applied
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary split sequences preserve the disjoint-exact-cover
    /// invariant, for any grid shape and worker count.
    #[test]
    fn split_sequences_keep_a_disjoint_exact_cover(
        configs in 1usize..200,
        replicates in 1usize..5,
        workers in 1usize..9,
        choices in prop::collection::vec((0usize..1000, 0usize..1000), 0..12),
    ) {
        let mut plan = Plan::partition(configs, replicates, workers);
        plan.verify_exact_cover().expect("initial partition covers");
        apply_splits(&mut plan, &choices);
        plan.verify_exact_cover().expect("cover survives splits");
        // The cover property, spelled out: total size preserved and
        // every boundary config-aligned.
        let total: usize = plan.tasks.iter().map(|t| t.cells.len()).sum();
        prop_assert_eq!(total, configs * replicates);
        for task in &plan.tasks {
            prop_assert_eq!(task.cells.start % replicates, 0);
            prop_assert_eq!(task.cells.end % replicates, 0);
        }
    }
}

/// A 6-configuration × 2-replicate grid (the `shard_golden` grid).
fn grid() -> Sweep {
    let mut sweep = Sweep::new("orchestrate-props");
    sweep.policies = vec![PolicySpec::Greedy, PolicySpec::Energy, PolicySpec::Eft];
    sweep.methods = vec![MethodSpec::Eba, MethodSpec::Cba];
    sweep.seeds = vec![1, 2];
    sweep
}

struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("green-orchp-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Deterministic end-to-end tiling: split the plan a few times, run
/// every fragment range through `run_shard`, and merge — the bytes must
/// match the single-process streamed run exactly.
#[test]
fn split_fragments_merge_back_to_streamed_bytes() {
    let sweep = grid();
    let mut reference = Vec::new();
    SweepRunner::new(1)
        .run_streamed(&sweep, None, None, &mut reference)
        .expect("reference run");

    let mut plan = Plan::partition(6, 2, 2); // 0..6, 6..12
    plan.split(0, 2).expect("split head task"); // 0..2 | 2..6
    plan.split(1, 8).expect("split tail task"); // 6..8 | 8..12
    plan.split(2, 4).expect("split a split tail"); // 2..4 | 4..6
    plan.verify_exact_cover().expect("cover intact");
    assert_eq!(plan.tasks.len(), 5);

    let scratch = Scratch::new("tiling");
    let mut fragments: Vec<(usize, PathBuf)> = Vec::new();
    for task in &plan.tasks {
        let csv = scratch.0.join(format!("frag-{:04}.csv", task.id));
        let job = ShardJob {
            sweep: &sweep,
            filter: None,
            assignment: ShardAssignment::Cells(task.cells.clone()),
            csv: &csv,
            resume: false,
            checkpoint_every: 1,
            columnar: false,
        };
        run_shard(&SweepRunner::new(1), &job, None).expect("fragment runs");
        fragments.push((task.cells.start, csv));
    }
    fragments.sort_by_key(|(start, _)| *start);
    let inputs: Vec<PathBuf> = fragments.into_iter().map(|(_, csv)| csv).collect();
    let merged = scratch.0.join("merged.csv");
    merge_shards(&inputs, &merged, false).expect("fragments tile");
    assert_eq!(
        std::fs::read(&merged).expect("merged bytes"),
        reference,
        "merged fragment output must be byte-identical to the streamed run"
    );
}
