//! Analysis of the study: Figures 9a–9c and 10.

use green_perfmodel::stats::{mean, pearson, welch_t_test};
use serde::{Deserialize, Serialize};

use crate::game::{Game, Version};
use crate::study::Study;

/// Aggregates for one treatment arm (one bar of Figure 9a/9b).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionSummary {
    /// The arm.
    pub version: Version,
    /// Retained instances.
    pub instances: usize,
    /// Mean total energy per play (kWh).
    pub mean_energy_kwh: f64,
    /// Mean jobs completed per play.
    pub mean_jobs: f64,
}

/// The full analysis bundle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(clippy::type_complexity)]
pub struct StudyAnalysis {
    /// Per-arm aggregates (Figures 9a and 9b).
    pub summaries: Vec<VersionSummary>,
    /// Welch test p-value, V3 vs V1 energy (the paper: p ≈ 0.00).
    pub p_v3_vs_v1: f64,
    /// Welch test p-value, V2 vs V1 energy (the paper: not significant).
    pub p_v2_vs_v1: f64,
    /// Figure 9c: (jobs completed, mean energy) points per arm.
    pub energy_by_jobs: Vec<(Version, Vec<(usize, f64)>)>,
    /// Figure 10: per arm, (mean job energy, run probability) points and
    /// the correlation between them.
    pub run_probability: Vec<(Version, Vec<(f64, f64)>, f64)>,
}

impl StudyAnalysis {
    /// Analyzes a study.
    pub fn of(study: &Study) -> StudyAnalysis {
        let energies =
            |v: Version| -> Vec<f64> { study.arm(v).iter().map(|r| r.energy_kwh).collect() };

        let summaries = Version::ALL
            .iter()
            .map(|&version| {
                let records = study.arm(version);
                VersionSummary {
                    version,
                    instances: records.len(),
                    mean_energy_kwh: mean(
                        &records.iter().map(|r| r.energy_kwh).collect::<Vec<_>>(),
                    ),
                    mean_jobs: mean(
                        &records
                            .iter()
                            .map(|r| r.jobs_completed as f64)
                            .collect::<Vec<_>>(),
                    ),
                }
            })
            .collect();

        let (_, p_v3_vs_v1) = welch_t_test(&energies(Version::V3), &energies(Version::V1));
        let (_, p_v2_vs_v1) = welch_t_test(&energies(Version::V2), &energies(Version::V1));

        // Figure 9c: stratify energy by jobs completed.
        let energy_by_jobs = Version::ALL
            .iter()
            .map(|&version| {
                let records = study.arm(version);
                let max_jobs = records.iter().map(|r| r.jobs_completed).max().unwrap_or(0);
                let mut points = Vec::new();
                for j in 1..=max_jobs {
                    let bucket: Vec<f64> = records
                        .iter()
                        .filter(|r| r.jobs_completed == j)
                        .map(|r| r.energy_kwh)
                        .collect();
                    if !bucket.is_empty() {
                        points.push((j, mean(&bucket)));
                    }
                }
                (version, points)
            })
            .collect();

        // Figure 10: P(run job i) vs mean energy of job i, per arm.
        let run_probability = Version::ALL
            .iter()
            .map(|&version| {
                let records = study.arm(version);
                let mut points = Vec::new();
                for job in 0..20 {
                    let saw = records.iter().filter(|r| r.saw[job]).count();
                    if saw == 0 {
                        continue;
                    }
                    let ran = records.iter().filter(|r| r.ran[job]).count();
                    let prob = ran as f64 / saw as f64;
                    points.push((job_mean_energy(job), prob));
                }
                let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
                let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
                (version, points, pearson(&xs, &ys))
            })
            .collect();

        StudyAnalysis {
            summaries,
            p_v3_vs_v1,
            p_v2_vs_v1,
            energy_by_jobs,
            run_probability,
        }
    }

    /// The arm summary.
    pub fn summary(&self, version: Version) -> &VersionSummary {
        self.summaries
            .iter()
            .find(|s| s.version == version)
            .expect("all arms summarized")
    }
}

/// Mean energy of one script job across eligible machines (the x-axis of
/// Figure 10). Computed from the script's ground truth via a probe game.
fn job_mean_energy(job: usize) -> f64 {
    let energies: Vec<f64> = probe_views(job).into_iter().flatten().collect();
    mean(&energies)
}

/// Extracts per-machine energies for any script job by replaying a probe
/// game (scheduling visible jobs round-robin) until the job is revealed.
fn probe_views(job: usize) -> Vec<Option<f64>> {
    let mut game = Game::new(Version::V2);
    let mut machine = 0;
    while !game.visible_jobs().iter().any(|j| j.id == job) {
        let visible = game.visible_jobs();
        let Some(candidate) = visible.first().map(|j| j.id) else {
            break;
        };
        let mut placed = false;
        for offset in 0..4 {
            let m = (machine + offset) % 4;
            if game.schedule(candidate, m).is_ok() {
                machine = (m + 1) % 4;
                placed = true;
                break;
            }
        }
        if !placed {
            game.advance();
        }
        if game.is_over() {
            break;
        }
    }
    match game.views(job) {
        Ok(views) => views
            .into_iter()
            .map(|v| v.eligible.then_some(v.energy_kwh.unwrap_or(0.0)))
            .collect(),
        Err(_) => vec![None; 4],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;

    fn study() -> Study {
        Study::run(StudyConfig {
            participants: 60,
            seed: 7,
            min_plays: 1,
            max_plays: 3,
        })
    }

    /// The paper's headline: V3 uses significantly less energy; V2 is
    /// indistinguishable from V1.
    #[test]
    fn v3_cuts_energy_v2_does_not() {
        let analysis = StudyAnalysis::of(&study());
        let v1 = analysis.summary(Version::V1).mean_energy_kwh;
        let v2 = analysis.summary(Version::V2).mean_energy_kwh;
        let v3 = analysis.summary(Version::V3).mean_energy_kwh;
        assert!(
            v3 < v1 * 0.85,
            "V3 should use ≥15% less energy: V1 {v1:.1} vs V3 {v3:.1}"
        );
        assert!((v2 - v1).abs() / v1 < 0.15, "V2 ≈ V1: {v1:.1} vs {v2:.1}");
        assert!(analysis.p_v3_vs_v1 < 0.01, "p = {}", analysis.p_v3_vs_v1);
        assert!(analysis.p_v2_vs_v1 > 0.05, "p = {}", analysis.p_v2_vs_v1);
    }

    /// Figure 9b: V3 completes fewer jobs.
    #[test]
    fn v3_completes_fewer_jobs() {
        let analysis = StudyAnalysis::of(&study());
        let v1 = analysis.summary(Version::V1).mean_jobs;
        let v3 = analysis.summary(Version::V3).mean_jobs;
        assert!(v3 < v1, "V1 {v1:.1} vs V3 {v3:.1}");
    }

    /// Figure 9c: conditioning on jobs completed, V3 still uses less.
    #[test]
    fn v3_less_energy_at_same_job_count() {
        let analysis = StudyAnalysis::of(&study());
        let find = |v: Version| {
            analysis
                .energy_by_jobs
                .iter()
                .find(|(ver, _)| *ver == v)
                .map(|(_, pts)| pts.clone())
                .unwrap()
        };
        let v1 = find(Version::V1);
        let v3 = find(Version::V3);
        // Compare buckets present in both arms with enough support.
        let mut compared = 0;
        let mut v3_lower = 0;
        for (jobs, e1) in &v1 {
            if let Some((_, e3)) = v3.iter().find(|(j, _)| j == jobs) {
                compared += 1;
                if e3 < e1 {
                    v3_lower += 1;
                }
            }
        }
        assert!(compared >= 3, "need overlapping buckets");
        assert!(
            v3_lower * 3 >= compared * 2,
            "V3 should be lower in ≥2/3 of buckets: {v3_lower}/{compared}"
        );
    }

    /// Figure 10: job energy does not predict whether a job is run.
    #[test]
    fn energy_uncorrelated_with_run_probability() {
        let analysis = StudyAnalysis::of(&study());
        for (version, points, r) in &analysis.run_probability {
            assert!(points.len() >= 10, "{version}: {} points", points.len());
            assert!(
                r.abs() < 0.45,
                "{version}: |r| = {:.2} should be weak",
                r.abs()
            );
        }
    }
}
