//! ASCII rendering of the game board — the textual equivalent of the
//! Figure 8 web interface.

use crate::game::Game;

/// Renders the current game state as a text board.
///
/// Mirrors the web UI's layout: a status strip (jobs completed,
/// allocation, time, energy), the queue of visible job cards, and one box
/// per machine showing what is running.
pub fn render(game: &Game) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Jobs Completed: {:<3}  Allocation: {:<8.1}  Time Left: {:<4.0}  Energy Used: {:.1}\n",
        game.completed_jobs().len(),
        game.allocation_left(),
        game.time_left(),
        game.energy_used_kwh(),
    ));
    out.push_str(&"-".repeat(78));
    out.push('\n');

    out.push_str("queue: ");
    let visible = game.visible_jobs();
    if visible.is_empty() {
        out.push_str("(empty)");
    }
    for job in &visible {
        out.push_str(&format!(
            "[job {} · {}c · {}] ",
            job.id,
            job.cores,
            job.priority.label()
        ));
    }
    out.push('\n');

    for machine in 0..4 {
        let running = game
            .placements()
            .iter()
            .rev()
            .find(|(_, m)| *m == machine)
            .filter(|(job, _)| !game.completed_jobs().contains(job) && !game.machine_free(machine))
            .map(|(job, _)| *job);
        let slot = match running {
            Some(job) => format!("running job {job}"),
            None => "idle".to_string(),
        };
        out.push_str(&format!("  Machine {machine}: [{slot}]\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::Version;

    #[test]
    fn renders_fresh_board() {
        let game = Game::new(Version::V1);
        let board = render(&game);
        assert!(board.contains("Jobs Completed: 0"));
        assert!(board.contains("job 0"));
        assert!(board.contains("Machine 3: [idle]"));
    }

    #[test]
    fn renders_running_job() {
        let mut game = Game::new(Version::V2);
        game.schedule(0, 2).unwrap();
        let board = render(&game);
        assert!(board.contains("Machine 2: [running job 0]"));
        // Queue no longer lists job 0 but shows the newly revealed job 6.
        assert!(!board.contains("[job 0 ·"));
        assert!(board.contains("job 6"));
    }

    #[test]
    fn completed_job_frees_the_box() {
        let mut game = Game::new(Version::V1);
        game.schedule(0, 2).unwrap();
        for _ in 0..10 {
            game.advance();
        }
        let board = render(&game);
        assert!(board.contains("Machine 2: [idle]"));
        assert!(board.contains("Jobs Completed: 1"));
    }
}
