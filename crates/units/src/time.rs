//! Simulation time: a point on the virtual clock and a span between points.
//!
//! The whole workspace runs on virtual time — platform, batch simulator,
//! task-graph runtime and user-study game alike — so both types are plain
//! `f64` seconds with explicit conversions, not `std::time` types.

use serde::{Deserialize, Serialize};

use crate::impl_quantity;

/// Seconds per hour.
pub const SECS_PER_HOUR: f64 = 3_600.0;
/// Seconds per day.
pub const SECS_PER_DAY: f64 = 86_400.0;
/// Hours per (non-leap) year, as used by the paper's carbon-rate formula
/// (`24 * 365`).
pub const HOURS_PER_YEAR: f64 = 8_760.0;
/// Seconds per (non-leap) year.
pub const SECS_PER_YEAR: f64 = SECS_PER_DAY * 365.0;

/// A duration on the virtual clock. Canonical unit: seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct TimeSpan(pub(crate) f64);

impl TimeSpan {
    /// Builds a span from seconds.
    #[inline]
    pub fn from_secs(s: f64) -> Self {
        TimeSpan(s)
    }

    /// Builds a span from minutes.
    #[inline]
    pub fn from_mins(m: f64) -> Self {
        TimeSpan(m * 60.0)
    }

    /// Builds a span from hours.
    #[inline]
    pub fn from_hours(h: f64) -> Self {
        TimeSpan(h * SECS_PER_HOUR)
    }

    /// Builds a span from days.
    #[inline]
    pub fn from_days(d: f64) -> Self {
        TimeSpan(d * SECS_PER_DAY)
    }

    /// Builds a span from years (365-day years).
    #[inline]
    pub fn from_years(y: f64) -> Self {
        TimeSpan(y * SECS_PER_YEAR)
    }

    /// This span in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// This span in minutes.
    #[inline]
    pub fn as_mins(self) -> f64 {
        self.0 / 60.0
    }

    /// This span in hours.
    #[inline]
    pub fn as_hours(self) -> f64 {
        self.0 / SECS_PER_HOUR
    }

    /// This span in days.
    #[inline]
    pub fn as_days(self) -> f64 {
        self.0 / SECS_PER_DAY
    }

    /// This span in 365-day years.
    #[inline]
    pub fn as_years(self) -> f64 {
        self.0 / SECS_PER_YEAR
    }
}

impl_quantity!(TimeSpan, "s");

/// A point on the virtual clock, measured in seconds since the simulation
/// epoch. Points support differencing (yielding a [`TimeSpan`]) and
/// offsetting by spans, but not point + point.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct TimePoint(f64);

impl TimePoint {
    /// The simulation epoch (t = 0).
    pub const EPOCH: TimePoint = TimePoint(0.0);

    /// Builds a point from seconds since the epoch.
    #[inline]
    pub fn from_secs(s: f64) -> Self {
        TimePoint(s)
    }

    /// Builds a point from hours since the epoch.
    #[inline]
    pub fn from_hours(h: f64) -> Self {
        TimePoint(h * SECS_PER_HOUR)
    }

    /// Seconds since the epoch.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Hours since the epoch.
    #[inline]
    pub fn as_hours(self) -> f64 {
        self.0 / SECS_PER_HOUR
    }

    /// Span since the epoch.
    #[inline]
    pub fn since_epoch(self) -> TimeSpan {
        TimeSpan(self.0)
    }

    /// The hour-of-day in `[0, 24)` assuming the epoch is midnight.
    #[inline]
    pub fn hour_of_day(self) -> f64 {
        let h = (self.0 / SECS_PER_HOUR) % 24.0;
        if h < 0.0 {
            h + 24.0
        } else {
            h
        }
    }

    /// The day index since the epoch (floor of days).
    #[inline]
    pub fn day_index(self) -> u64 {
        (self.0 / SECS_PER_DAY).max(0.0) as u64
    }

    /// The later of two points.
    #[inline]
    pub fn max(self, other: TimePoint) -> TimePoint {
        TimePoint(self.0.max(other.0))
    }

    /// The earlier of two points.
    #[inline]
    pub fn min(self, other: TimePoint) -> TimePoint {
        TimePoint(self.0.min(other.0))
    }
}

impl core::ops::Add<TimeSpan> for TimePoint {
    type Output = TimePoint;
    #[inline]
    fn add(self, rhs: TimeSpan) -> TimePoint {
        TimePoint(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign<TimeSpan> for TimePoint {
    #[inline]
    fn add_assign(&mut self, rhs: TimeSpan) {
        self.0 += rhs.0;
    }
}

impl core::ops::Sub<TimeSpan> for TimePoint {
    type Output = TimePoint;
    #[inline]
    fn sub(self, rhs: TimeSpan) -> TimePoint {
        TimePoint(self.0 - rhs.0)
    }
}

impl core::ops::Sub<TimePoint> for TimePoint {
    type Output = TimeSpan;
    #[inline]
    fn sub(self, rhs: TimePoint) -> TimeSpan {
        TimeSpan(self.0 - rhs.0)
    }
}

impl core::fmt::Display for TimePoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "t+{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_conversions() {
        assert!((TimeSpan::from_hours(2.0).as_secs() - 7200.0).abs() < 1e-9);
        assert!((TimeSpan::from_days(1.0).as_hours() - 24.0).abs() < 1e-9);
        assert!((TimeSpan::from_years(1.0).as_hours() - HOURS_PER_YEAR).abs() < 1e-6);
        assert!((TimeSpan::from_mins(90.0).as_hours() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn point_arithmetic() {
        let t0 = TimePoint::EPOCH;
        let t1 = t0 + TimeSpan::from_hours(5.0);
        assert!((t1.as_hours() - 5.0).abs() < 1e-12);
        assert!(((t1 - t0).as_hours() - 5.0).abs() < 1e-12);
        assert!(((t1 - TimeSpan::from_hours(1.0)).as_hours() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hour_of_day_wraps() {
        let t = TimePoint::from_hours(49.5);
        assert!((t.hour_of_day() - 1.5).abs() < 1e-9);
        assert_eq!(t.day_index(), 2);
    }
}
