//! A tour of the five accounting methods: price the same measured job
//! under Runtime, Energy, Peak, EBA and CBA on every testbed machine and
//! see how each method ranks the hardware — the heart of Tables 1 and 3.
//!
//! ```text
//! cargo run --example accounting_tour
//! ```

use green_accounting::{normalize_min, ChargeContext, MethodKind};
use green_carbon::GridRegion;
use green_machines::{AppId, AppProfile, TestbedMachine, TESTBED_YEAR};

fn context(machine: TestbedMachine, app: AppId) -> ChargeContext {
    let spec = machine.spec();
    let profile = AppProfile::of(app).on(machine);
    let cores = app.cores();
    ChargeContext::new(profile.energy, profile.runtime)
        .with_cores(cores)
        .with_provisioned(spec.slice_tdp(cores), spec.provisioned_share(cores))
        .with_peak(spec.cpu.peak_per_thread)
        .with_carbon(
            GridRegion::UsMidwest.trace(7, 30).mean(),
            spec.carbon_rate(TESTBED_YEAR),
        )
}

fn main() {
    for app in [AppId::Cholesky, AppId::Pagerank] {
        println!("\n=== {app} ===");
        println!(
            "{:<14} {:>9} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7}",
            "machine", "runtime", "energy", "RT", "EN", "Peak", "EBA", "CBA"
        );
        let contexts: Vec<(TestbedMachine, ChargeContext)> = TestbedMachine::ALL
            .iter()
            .map(|&m| (m, context(m, app)))
            .collect();
        // Normalize each method so its cheapest machine reads 1.00.
        let normalized: Vec<Vec<f64>> = MethodKind::ALL
            .iter()
            .map(|kind| {
                normalize_min(
                    &contexts
                        .iter()
                        .map(|(_, c)| kind.charge(c).value())
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        for (i, (machine, ctx)) in contexts.iter().enumerate() {
            println!(
                "{:<14} {:>8.2}s {:>8.1}J {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2}",
                machine.name(),
                ctx.duration.as_secs(),
                ctx.energy.as_joules(),
                normalized[0][i],
                normalized[1][i],
                normalized[2][i],
                normalized[3][i],
                normalized[4][i],
            );
        }
        // Who wins under each method?
        for (kind, norm) in MethodKind::ALL.iter().zip(&normalized) {
            let winner = contexts
                .iter()
                .zip(norm)
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|((m, _), _)| m.name())
                .unwrap();
            println!("  cheapest under {:<8}: {winner}", kind.name());
        }
    }
    println!(
        "\nNote how Peak rewards the machine that burns the most energy, while \
         EBA/CBA reward the efficient ones — Section 4.2's central observation."
    );
}
