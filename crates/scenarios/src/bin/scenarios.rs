//! The `scenarios` command: run a sweep file end to end.
//!
//! ```text
//! scenarios <sweep.toml> [options]
//!
//!   --out <file.csv>     write per-cell aggregates (with CIs) as CSV
//!   --stream             stream rows to --out as configurations finish
//!                        (constant memory; identical bytes)
//!   --threads <n>        worker threads (default: all cores)
//!   --preset <p>         override the workload preset (tiny|quick|paper)
//!   --filter <substr>    only run cells whose label contains <substr>
//!   --list               print the expanded cells and exit without running
//!   --quiet              suppress the progress line
//! ```

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use green_scenarios::{cell_label, Sweep, SweepRunner, WorkloadPreset};

const USAGE: &str = "\
scenarios — parallel Monte-Carlo scenario sweeps over the batch simulator

USAGE:
    scenarios <sweep.toml> [--out <file.csv>] [--stream] [--threads <n>]
              [--preset <tiny|quick|paper>] [--filter <substr>] [--list]
              [--quiet]

--stream writes aggregate rows to --out as each configuration's
replicates complete (expansion order, byte-identical to the buffered
CSV) instead of holding every cell in memory — the mode for grids too
large to aggregate in RAM.

--preset reruns the sweep file's grid at another workload scale —
`--preset paper` replays the full 142,380-job workload per cell (the
scale the paper reports on; with the arena-reused simulator a paper
cell runs in well under a second), `--preset tiny` shrinks any grid to
a CI-sized smoke pass. The default user population follows the preset
unless the file pins a `grid.users` axis.

The sweep file declares a Cartesian grid (policies × methods × fleets ×
sim-years × users × backfill × workload scale × intensity scale ×
elasticity × price schedule × banking cap) and a set of Monte-Carlo
replicate seeds; see examples/sweeps/ in the repository for worked
specs.

--filter runs only the grid configurations whose label (the `/`-joined
config columns, e.g. `adaptive/cba/0+1+2+3/2023/24/64/1.000/1.000/
1.00/carbon:0.600/100.0`) contains the given substring — handy to
iterate on one cell of a large grid.
";

fn fail(message: &str) -> ! {
    eprintln!("error: {message}\n\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }

    let mut sweep_path: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut threads = 0usize;
    let mut preset: Option<WorkloadPreset> = None;
    let mut filter: Option<String> = None;
    let mut list = false;
    let mut quiet = false;
    let mut stream = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                let Some(v) = it.next() else {
                    fail("--out needs a file path");
                };
                out = Some(PathBuf::from(v));
            }
            "--threads" => {
                let Some(v) = it.next() else {
                    fail("--threads needs a count");
                };
                threads = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad thread count `{v}`")));
            }
            "--preset" => {
                let Some(v) = it.next() else {
                    fail("--preset needs a workload preset (tiny|quick|paper)");
                };
                preset = Some(WorkloadPreset::parse(v).unwrap_or_else(|e| fail(&e.to_string())));
            }
            "--filter" => {
                let Some(v) = it.next() else {
                    fail("--filter needs a label substring");
                };
                filter = Some(v.clone());
            }
            "--list" => list = true,
            "--quiet" => quiet = true,
            "--stream" => stream = true,
            other if other.starts_with('-') => fail(&format!("unknown option `{other}`")),
            other => {
                if sweep_path.replace(PathBuf::from(other)).is_some() {
                    fail("more than one sweep file given");
                }
            }
        }
    }
    let Some(sweep_path) = sweep_path else {
        fail("no sweep file given");
    };

    let text = std::fs::read_to_string(&sweep_path).unwrap_or_else(|e| {
        fail(&format!("cannot read {}: {e}", sweep_path.display()));
    });
    let mut sweep = Sweep::from_toml_str(&text).unwrap_or_else(|e| {
        fail(&format!("{}: {e}", sweep_path.display()));
    });
    if let Some(preset) = preset {
        sweep.override_preset(preset);
    }

    if list {
        println!(
            "sweep `{}`: {} configurations × {} replicates = {} cells",
            sweep.name,
            sweep.config_count(),
            sweep.seeds.len(),
            sweep.cell_count()
        );
        for cell in sweep.expand() {
            let label = cell_label(&cell.spec);
            if filter.as_deref().is_some_and(|f| !label.contains(f)) {
                continue;
            }
            println!("  [{:>4}] {label} seed={}", cell.index, cell.spec.seed);
        }
        return;
    }

    let runner = SweepRunner::new(threads);
    if !quiet {
        eprintln!(
            "running sweep `{}`: {} cells on {} threads{}…",
            sweep.name,
            sweep.cell_count(),
            runner.threads(),
            filter
                .as_deref()
                .map(|f| format!(" (filter: `{f}`)"))
                .unwrap_or_default()
        );
    }
    let last_printed = AtomicUsize::new(0);
    let progress = move |done: usize, total: usize| {
        // Only one worker wins each milestone print, so the stream stays
        // readable under parallelism.
        let prev = last_printed.load(Ordering::Relaxed);
        if (done == total || done >= prev + (total / 20).max(1))
            && last_printed
                .compare_exchange(prev, done, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            eprintln!("  {done}/{total} cells");
        }
    };
    if stream {
        let Some(out) = out else {
            fail("--stream needs --out <file.csv> to stream into");
        };
        let file = std::fs::File::create(&out).unwrap_or_else(|e| {
            eprintln!("error: creating {}: {e}", out.display());
            std::process::exit(1);
        });
        let mut writer = std::io::BufWriter::new(file);
        let summary = runner
            .run_streamed(
                &sweep,
                filter.as_deref(),
                if quiet { None } else { Some(&progress) },
                &mut writer,
            )
            .and_then(|summary| {
                use std::io::Write;
                writer.flush()?;
                Ok(summary)
            })
            .unwrap_or_else(|e| {
                eprintln!("error: streaming to {}: {e}", out.display());
                std::process::exit(1);
            });
        if summary.configs == 0 {
            if let Some(f) = filter.as_deref() {
                eprintln!("warning: filter `{f}` matched no cells");
            }
        }
        eprintln!(
            "streamed {} aggregate rows ({} cells, {} events) to {}",
            summary.configs,
            summary.cells,
            summary.stats.events,
            out.display()
        );
        return;
    }

    let results = runner.run_filtered(
        &sweep,
        filter.as_deref(),
        if quiet { None } else { Some(&progress) },
    );
    if results.cells.is_empty() {
        if let Some(f) = filter.as_deref() {
            eprintln!("warning: filter `{f}` matched no cells");
        }
    }

    print!("{}", results.render());
    if let Some(out) = out {
        match results.write_csv(&out) {
            Ok(()) => eprintln!(
                "wrote {} aggregate rows to {}",
                results.cells.len(),
                out.display()
            ),
            Err(e) => {
                eprintln!("error: writing {}: {e}", out.display());
                std::process::exit(1);
            }
        }
    }
}
