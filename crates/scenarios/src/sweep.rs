//! The sweep grammar: Cartesian parameter grids × Monte-Carlo replicates.

use crate::spec::{fleet_index, MethodSpec, PolicySpec, ScenarioSpec, SpecError};
use crate::toml::{self, Value};
use green_market::PriceSpec;
use green_units::TimeSpan;
use green_workload::TraceConfig;

/// Workload presets mirroring `green_bench::SimScale`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadPreset {
    /// ~100 jobs — sub-millisecond cells, the preset for survey-scale
    /// (10⁵–10⁶-cell) grids where the grid itself is the workload.
    Micro,
    /// ~3,000 jobs (after doubling) — CI-sized.
    Tiny,
    /// ~12,000 jobs — seconds per cell in release builds.
    Quick,
    /// The paper's 142,380-job workload.
    Paper,
}

impl WorkloadPreset {
    /// Parses a preset token (`micro`, `tiny`/`small`, `quick`,
    /// `paper`/`full`) — the grammar both sweep files and the
    /// `scenarios --preset` flag use.
    pub fn parse(token: &str) -> Result<Self, SpecError> {
        match token.trim().to_ascii_lowercase().as_str() {
            "micro" => Ok(WorkloadPreset::Micro),
            "tiny" | "small" => Ok(WorkloadPreset::Tiny),
            "quick" => Ok(WorkloadPreset::Quick),
            "paper" | "full" => Ok(WorkloadPreset::Paper),
            _ => Err(SpecError(format!(
                "unknown workload preset `{token}` (expected micro|tiny|quick|paper)"
            ))),
        }
    }
}

/// The shared workload every cell replays.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Scale preset.
    pub preset: WorkloadPreset,
    /// Base trace seed (shared by every cell; the Monte-Carlo axis is the
    /// per-cell intensity realization, not the workload).
    pub seed: u64,
    /// Whether to apply the paper's each-execution-repeats doubling.
    pub doubled: bool,
}

impl WorkloadConfig {
    /// The trace configuration this workload resolves to.
    pub fn trace_config(&self) -> TraceConfig {
        match self.preset {
            WorkloadPreset::Micro => TraceConfig {
                users: 8,
                unique_jobs: 60,
                duration: TimeSpan::from_days(2.0),
                max_runtime: TimeSpan::from_hours(8.0),
                seed: self.seed,
            },
            WorkloadPreset::Tiny => TraceConfig::small(self.seed),
            WorkloadPreset::Quick => TraceConfig {
                users: 60,
                unique_jobs: 6_000,
                duration: TimeSpan::from_days(14.0),
                max_runtime: TimeSpan::from_hours(48.0),
                seed: self.seed,
            },
            WorkloadPreset::Paper => TraceConfig::paper_scale(self.seed),
        }
    }

    /// Default user population for the preset (used when the grid does not
    /// sweep `users`).
    pub fn default_users(&self) -> u32 {
        match self.preset {
            WorkloadPreset::Micro => 8,
            WorkloadPreset::Tiny => 24,
            WorkloadPreset::Quick => 60,
            WorkloadPreset::Paper => 250,
        }
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            preset: WorkloadPreset::Tiny,
            seed: 31,
            doubled: false,
        }
    }
}

/// One expanded cell: a grid configuration plus one replicate seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Position in expansion order (stable across runs and thread
    /// counts).
    pub index: usize,
    /// Which grid configuration this cell replicates (`index /
    /// seeds.len()`).
    pub config: usize,
    /// The fully-resolved parameters.
    pub spec: ScenarioSpec,
}

/// A declarative sweep: every axis is a list, cells are the Cartesian
/// product, and each cell is replicated once per Monte-Carlo seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// Sweep name (report/file labelling only).
    pub name: String,
    /// The shared workload.
    pub workload: WorkloadConfig,
    /// Policy axis.
    pub policies: Vec<PolicySpec>,
    /// Accounting-method axis.
    pub methods: Vec<MethodSpec>,
    /// Fleet-subset axis (each entry is a set of Table 5 indices).
    pub fleets: Vec<Vec<usize>>,
    /// Simulation-year axis.
    pub sim_years: Vec<i32>,
    /// User-population axis.
    pub users: Vec<u32>,
    /// Backfill-depth axis.
    pub backfill_depths: Vec<usize>,
    /// Workload-volume axis.
    pub workload_scales: Vec<f64>,
    /// Intensity-multiplier axis.
    pub intensity_scales: Vec<f64>,
    /// Per-hour intensity jitter sigma (applies to every cell).
    pub intensity_jitter: f64,
    /// Population-elasticity axis (market incentive loop).
    pub elasticities: Vec<f64>,
    /// Posted-price-schedule axis.
    pub price_schedules: Vec<PriceSpec>,
    /// Banked-savings-cap axis.
    pub banking_caps: Vec<f64>,
    /// Monte-Carlo replicate seeds.
    pub seeds: Vec<u64>,
    /// True when the sweep file pinned `grid.users` explicitly — a
    /// pinned axis survives [`override_preset`](Sweep::override_preset)
    /// even when its value happens to equal the preset default.
    pub users_pinned: bool,
}

impl Sweep {
    /// A single-cell sweep (Greedy × EBA), every axis a singleton — the
    /// starting point for builder-style construction.
    pub fn new(name: impl Into<String>) -> Sweep {
        let workload = WorkloadConfig::default();
        let users = workload.default_users();
        Sweep {
            name: name.into(),
            workload,
            policies: vec![PolicySpec::Greedy],
            methods: vec![MethodSpec::Eba],
            fleets: vec![vec![0, 1, 2, 3]],
            sim_years: vec![green_machines::SIM_YEAR],
            users: vec![users],
            backfill_depths: vec![green_batchsim::cluster::DEFAULT_BACKFILL_DEPTH],
            workload_scales: vec![1.0],
            intensity_scales: vec![1.0],
            intensity_jitter: 0.0,
            elasticities: vec![0.0],
            price_schedules: vec![PriceSpec::Flat],
            banking_caps: vec![0.0],
            seeds: vec![1],
            users_pinned: false,
        }
    }

    /// Re-targets the sweep at another workload preset — the
    /// `scenarios --preset` override, so any sweep file can be rerun at
    /// paper scale (or shrunk to `tiny` for a smoke pass) without
    /// editing it. The default user population follows the new preset;
    /// an explicit `grid.users` axis is preserved, even when its value
    /// happens to equal the old preset's default.
    pub fn override_preset(&mut self, preset: WorkloadPreset) {
        self.workload.preset = preset;
        if !self.users_pinned {
            self.users = vec![self.workload.default_users()];
        }
    }

    /// Number of grid configurations (cells before replication).
    pub fn config_count(&self) -> usize {
        self.policies.len()
            * self.methods.len()
            * self.fleets.len()
            * self.sim_years.len()
            * self.users.len()
            * self.backfill_depths.len()
            * self.workload_scales.len()
            * self.intensity_scales.len()
            * self.elasticities.len()
            * self.price_schedules.len()
            * self.banking_caps.len()
    }

    /// Total cell count: configurations × replicate seeds.
    pub fn cell_count(&self) -> usize {
        self.config_count() * self.seeds.len()
    }

    /// Validates axis contents (non-empty, sane ranges).
    pub fn validate(&self) -> Result<(), SpecError> {
        let axes: [(&str, usize); 12] = [
            ("policies", self.policies.len()),
            ("methods", self.methods.len()),
            ("fleets", self.fleets.len()),
            ("sim_years", self.sim_years.len()),
            ("users", self.users.len()),
            ("backfill_depths", self.backfill_depths.len()),
            ("workload_scales", self.workload_scales.len()),
            ("intensity_scales", self.intensity_scales.len()),
            ("elasticities", self.elasticities.len()),
            ("price_schedules", self.price_schedules.len()),
            ("banking_caps", self.banking_caps.len()),
            ("seeds", self.seeds.len()),
        ];
        for (name, len) in axes {
            if len == 0 {
                return Err(SpecError(format!("axis `{name}` is empty")));
            }
        }
        for fleet in &self.fleets {
            if fleet.is_empty() {
                return Err(SpecError("a fleet subset is empty".into()));
            }
            if fleet.iter().any(|i| *i >= 4) {
                return Err(SpecError("fleet subset index out of range".into()));
            }
            for policy in &self.policies {
                if let PolicySpec::Fixed(i) = policy {
                    if *i >= fleet.len() {
                        return Err(SpecError(format!(
                            "fixed policy index {i} exceeds fleet subset of {} machines",
                            fleet.len()
                        )));
                    }
                }
            }
        }
        if self.workload_scales.iter().any(|s| *s <= 0.0) {
            return Err(SpecError("workload scales must be positive".into()));
        }
        if self.intensity_scales.iter().any(|s| *s <= 0.0) {
            return Err(SpecError("intensity scales must be positive".into()));
        }
        if self.intensity_jitter < 0.0 {
            return Err(SpecError("intensity jitter must be non-negative".into()));
        }
        if self.elasticities.iter().any(|e| *e < 0.0 || !e.is_finite()) {
            return Err(SpecError(
                "elasticities must be finite and non-negative".into(),
            ));
        }
        if self.banking_caps.iter().any(|c| *c < 0.0 || !c.is_finite()) {
            return Err(SpecError(
                "banking caps must be finite and non-negative".into(),
            ));
        }
        Ok(())
    }

    /// Expands the grid into cells, replicate seeds innermost. Expansion
    /// order is the determinism anchor: runners may execute cells in any
    /// order but must report them in this one.
    pub fn expand(&self) -> Vec<Cell> {
        let mut cells = Vec::with_capacity(self.cell_count());
        let replicates = self.seeds.len();
        for policy in &self.policies {
            for method in &self.methods {
                for fleet in &self.fleets {
                    for &sim_year in &self.sim_years {
                        for &users in &self.users {
                            for &backfill in &self.backfill_depths {
                                for &wscale in &self.workload_scales {
                                    for &iscale in &self.intensity_scales {
                                        for &elasticity in &self.elasticities {
                                            for &schedule in &self.price_schedules {
                                                for &cap in &self.banking_caps {
                                                    for &seed in &self.seeds {
                                                        let index = cells.len();
                                                        cells.push(Cell {
                                                            index,
                                                            config: index / replicates,
                                                            spec: ScenarioSpec::new(
                                                                *policy, *method,
                                                            )
                                                            .with_fleet(fleet.clone())
                                                            .with_sim_year(sim_year)
                                                            .with_users(users)
                                                            .with_backfill_depth(backfill)
                                                            .with_workload_scale(wscale)
                                                            .with_intensity(
                                                                iscale,
                                                                self.intensity_jitter,
                                                            )
                                                            .with_market(elasticity, schedule, cap)
                                                            .with_seed(seed),
                                                        });
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// The cell at `index` of the expansion order, decoded directly from
    /// the mixed-radix digit string of the axes — O(1), no grid
    /// materialization. Bit-identical to `expand()[index]`, which
    /// `tests/sweep_properties.rs` pins over random grids: this is what
    /// lets a shard worker of a million-cell sweep build only its own
    /// cell range.
    ///
    /// # Panics
    ///
    /// Panics when `index >= cell_count()`.
    pub fn cell_at(&self, index: usize) -> Cell {
        assert!(
            index < self.cell_count(),
            "cell index {index} out of range (grid has {} cells)",
            self.cell_count()
        );
        // Decode innermost axis first — the mirror image of `expand`'s
        // loop nesting (seeds innermost, policies outermost).
        let mut i = index;
        let mut digit = |len: usize| -> usize {
            let d = i % len;
            i /= len;
            d
        };
        let seed = self.seeds[digit(self.seeds.len())];
        let cap = self.banking_caps[digit(self.banking_caps.len())];
        let schedule = self.price_schedules[digit(self.price_schedules.len())];
        let elasticity = self.elasticities[digit(self.elasticities.len())];
        let iscale = self.intensity_scales[digit(self.intensity_scales.len())];
        let wscale = self.workload_scales[digit(self.workload_scales.len())];
        let backfill = self.backfill_depths[digit(self.backfill_depths.len())];
        let users = self.users[digit(self.users.len())];
        let sim_year = self.sim_years[digit(self.sim_years.len())];
        let fleet = &self.fleets[digit(self.fleets.len())];
        let method = self.methods[digit(self.methods.len())];
        let policy = self.policies[digit(self.policies.len())];
        debug_assert_eq!(i, 0, "index fully consumed");
        Cell {
            index,
            config: index / self.seeds.len(),
            spec: ScenarioSpec::new(policy, method)
                .with_fleet(fleet.clone())
                .with_sim_year(sim_year)
                .with_users(users)
                .with_backfill_depth(backfill)
                .with_workload_scale(wscale)
                .with_intensity(iscale, self.intensity_jitter)
                .with_market(elasticity, schedule, cap)
                .with_seed(seed),
        }
    }

    /// Expands only the cells in `range` (expansion-order indices,
    /// half-open) — the shard worker's entry point. Memory and time are
    /// O(range length) regardless of the grid's total size.
    ///
    /// # Panics
    ///
    /// Panics when the range reaches past `cell_count()`.
    pub fn expand_range(&self, range: core::ops::Range<usize>) -> Vec<Cell> {
        range.map(|i| self.cell_at(i)).collect()
    }

    /// Parses a sweep from TOML text. See the repository README and
    /// `examples/sweeps/` for the format.
    ///
    /// Unknown sections and keys are rejected rather than ignored — a
    /// typo'd axis name must not silently drop the axis from an
    /// hours-long run.
    pub fn from_toml_str(input: &str) -> Result<Sweep, SpecError> {
        let doc = toml::parse(input).map_err(|e| SpecError(e.to_string()))?;
        reject_unknown(&doc)?;
        let root = &doc[""];
        let mut sweep = Sweep::new(
            root.get("name")
                .and_then(Value::as_str)
                .unwrap_or("unnamed-sweep"),
        );

        if let Some(workload) = doc.get("workload") {
            if let Some(v) = workload.get("preset") {
                let token = v
                    .as_str()
                    .ok_or_else(|| SpecError("workload.preset must be a string".into()))?;
                sweep.workload.preset = WorkloadPreset::parse(token)?;
            }
            if let Some(v) = workload.get("seed") {
                sweep.workload.seed = to_u64(int_value(v, "workload.seed")?, "workload.seed")?;
            }
            if let Some(v) = workload.get("doubled") {
                sweep.workload.doubled = v
                    .as_bool()
                    .ok_or_else(|| SpecError("workload.doubled must be a boolean".into()))?;
            }
            // Re-derive the preset-dependent default population unless the
            // grid overrides it below.
            sweep.users = vec![sweep.workload.default_users()];
        }

        let Some(grid) = doc.get("grid") else {
            sweep.validate()?;
            return Ok(sweep);
        };

        if let Some(v) = grid.get("policies") {
            sweep.policies = str_items(v, "grid.policies")?
                .iter()
                .map(|s| PolicySpec::parse(s))
                .collect::<Result<_, _>>()?;
        }
        if let Some(v) = grid.get("methods") {
            sweep.methods = str_items(v, "grid.methods")?
                .iter()
                .map(|s| MethodSpec::parse(s))
                .collect::<Result<_, _>>()?;
        }
        if let Some(v) = grid.get("fleets") {
            sweep.fleets = parse_fleets(v)?;
        }
        if let Some(v) = grid.get("sim_years") {
            sweep.sim_years = int_items(v, "grid.sim_years")?
                .into_iter()
                .map(|i| {
                    i32::try_from(i)
                        .map_err(|_| SpecError(format!("grid.sim_years: {i} out of range")))
                })
                .collect::<Result<_, _>>()?;
        }
        if let Some(v) = grid.get("users") {
            sweep.users_pinned = true;
            sweep.users = int_items(v, "grid.users")?
                .into_iter()
                .map(|i| {
                    u32::try_from(i)
                        .ok()
                        .filter(|u| *u > 0)
                        .ok_or_else(|| SpecError(format!("grid.users: {i} must be a positive u32")))
                })
                .collect::<Result<_, _>>()?;
        }
        if let Some(v) = grid.get("backfill_depths") {
            sweep.backfill_depths = int_items(v, "grid.backfill_depths")?
                .into_iter()
                .map(|i| {
                    usize::try_from(i).map_err(|_| {
                        SpecError(format!("grid.backfill_depths: {i} must be non-negative"))
                    })
                })
                .collect::<Result<_, _>>()?;
        }
        if let Some(v) = grid.get("workload_scales") {
            sweep.workload_scales = float_items(v, "grid.workload_scales")?;
        }
        if let Some(v) = grid.get("intensity_scales") {
            sweep.intensity_scales = float_items(v, "grid.intensity_scales")?;
        }
        if let Some(v) = grid.get("intensity_jitter") {
            sweep.intensity_jitter = v
                .as_float()
                .ok_or_else(|| SpecError("grid.intensity_jitter must be a number".into()))?;
        }
        if let Some(v) = grid.get("elasticities") {
            sweep.elasticities = float_items(v, "grid.elasticities")?;
        }
        if let Some(v) = grid.get("price_schedules") {
            sweep.price_schedules = str_items(v, "grid.price_schedules")?
                .iter()
                .map(|s| PriceSpec::parse(s).map_err(SpecError))
                .collect::<Result<_, _>>()?;
        }
        if let Some(v) = grid.get("banking_caps") {
            sweep.banking_caps = float_items(v, "grid.banking_caps")?;
        }
        if let Some(v) = grid.get("seeds") {
            sweep.seeds = int_items(v, "grid.seeds")?
                .into_iter()
                .map(|i| to_u64(i, "grid.seeds"))
                .collect::<Result<_, _>>()?;
        }
        sweep.validate()?;
        Ok(sweep)
    }
}

fn int_value(v: &Value, what: &str) -> Result<i64, SpecError> {
    v.as_int()
        .ok_or_else(|| SpecError(format!("{what} must be an integer")))
}

fn to_u64(i: i64, what: &str) -> Result<u64, SpecError> {
    u64::try_from(i).map_err(|_| SpecError(format!("{what}: {i} must be non-negative")))
}

/// The sections and keys `from_toml_str` understands.
const KNOWN: [(&str, &[&str]); 3] = [
    ("", &["name"]),
    ("workload", &["preset", "seed", "doubled"]),
    (
        "grid",
        &[
            "policies",
            "methods",
            "fleets",
            "sim_years",
            "users",
            "backfill_depths",
            "workload_scales",
            "intensity_scales",
            "intensity_jitter",
            "elasticities",
            "price_schedules",
            "banking_caps",
            "seeds",
        ],
    ),
];

fn reject_unknown(doc: &crate::toml::Document) -> Result<(), SpecError> {
    for (section, table) in doc {
        let Some((_, keys)) = KNOWN.iter().find(|(name, _)| name == section) else {
            return Err(SpecError(format!(
                "unknown section `[{section}]` (expected [workload] or [grid])"
            )));
        };
        for key in table.keys() {
            if !keys.contains(&key.as_str()) {
                let at = if section.is_empty() {
                    key.clone()
                } else {
                    format!("{section}.{key}")
                };
                return Err(SpecError(format!(
                    "unknown key `{at}` (valid keys here: {})",
                    keys.join(", ")
                )));
            }
        }
    }
    Ok(())
}

fn str_items(v: &Value, what: &str) -> Result<Vec<String>, SpecError> {
    let items = v
        .as_array()
        .ok_or_else(|| SpecError(format!("{what} must be an array")))?;
    items
        .iter()
        .map(|item| {
            item.as_str()
                .map(str::to_string)
                .ok_or_else(|| SpecError(format!("{what} must contain strings")))
        })
        .collect()
}

fn int_items(v: &Value, what: &str) -> Result<Vec<i64>, SpecError> {
    let items = v
        .as_array()
        .ok_or_else(|| SpecError(format!("{what} must be an array")))?;
    items
        .iter()
        .map(|item| {
            item.as_int()
                .ok_or_else(|| SpecError(format!("{what} must contain integers")))
        })
        .collect()
}

fn float_items(v: &Value, what: &str) -> Result<Vec<f64>, SpecError> {
    let items = v
        .as_array()
        .ok_or_else(|| SpecError(format!("{what} must be an array")))?;
    items
        .iter()
        .map(|item| {
            item.as_float()
                .ok_or_else(|| SpecError(format!("{what} must contain numbers")))
        })
        .collect()
}

/// `fleets` entries are `"all"` or arrays of machine tokens.
fn parse_fleets(v: &Value) -> Result<Vec<Vec<usize>>, SpecError> {
    let items = v
        .as_array()
        .ok_or_else(|| SpecError("grid.fleets must be an array".into()))?;
    items
        .iter()
        .map(|item| match item {
            Value::Str(s) if s.eq_ignore_ascii_case("all") => Ok(vec![0, 1, 2, 3]),
            Value::Array(tokens) => tokens
                .iter()
                .map(|t| match t {
                    Value::Str(s) => fleet_index(s),
                    Value::Int(i) if (0..4).contains(i) => Ok(*i as usize),
                    _ => Err(SpecError("bad fleet machine token".into())),
                })
                .collect(),
            _ => Err(SpecError(
                "grid.fleets entries must be \"all\" or arrays of machines".into(),
            )),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"
name = "sensitivity"

[workload]
preset = "tiny"
seed = 31
doubled = false

[grid]
policies = ["greedy", "energy", "eft"]
methods = ["eba", "cba"]
users = [24, 48]
seeds = [1, 2, 3]
"#;

    #[test]
    fn toml_roundtrip_and_counts() {
        let sweep = Sweep::from_toml_str(SPEC).unwrap();
        assert_eq!(sweep.name, "sensitivity");
        assert_eq!(sweep.config_count(), 3 * 2 * 2);
        assert_eq!(sweep.cell_count(), 3 * 2 * 2 * 3);
        let cells = sweep.expand();
        assert_eq!(cells.len(), 36);
        // Seeds are innermost; config index advances every |seeds| cells.
        assert_eq!(cells[0].spec.seed, 1);
        assert_eq!(cells[1].spec.seed, 2);
        assert_eq!(cells[2].spec.seed, 3);
        assert_eq!(cells[0].config, 0);
        assert_eq!(cells[3].config, 1);
        // Every cell is unique.
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
            for other in &cells[i + 1..] {
                assert_ne!(c.spec, other.spec);
            }
        }
    }

    #[test]
    fn fleets_parse_all_and_subsets() {
        let sweep = Sweep::from_toml_str(
            r#"
[grid]
fleets = ["all", ["faster", "ic"], [1, 3]]
"#,
        )
        .unwrap();
        assert_eq!(sweep.fleets, vec![vec![0, 1, 2, 3], vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut sweep = Sweep::new("bad");
        sweep.seeds.clear();
        assert!(sweep.validate().is_err());

        let mut sweep = Sweep::new("bad");
        sweep.policies = vec![PolicySpec::Fixed(2)];
        sweep.fleets = vec![vec![0, 1]];
        assert!(sweep.validate().is_err());

        assert!(Sweep::from_toml_str("[grid]\npolicies = [\"warp\"]").is_err());
        assert!(Sweep::from_toml_str("[workload]\npreset = \"huge\"").is_err());
    }

    #[test]
    fn typos_and_bad_values_are_rejected_not_ignored() {
        // A singular/plural typo must not silently drop the axis.
        let e = Sweep::from_toml_str("[grid]\nintensity_scale = [1.0, 1.5]").unwrap_err();
        assert!(e.0.contains("unknown key `grid.intensity_scale`"), "{e}");
        let e = Sweep::from_toml_str("[grids]\npolicies = [\"greedy\"]").unwrap_err();
        assert!(e.0.contains("unknown section"), "{e}");
        let e = Sweep::from_toml_str("title = \"x\"").unwrap_err();
        assert!(e.0.contains("unknown key `title`"), "{e}");
        // Negative integers must error instead of wrapping.
        assert!(Sweep::from_toml_str("[grid]\nusers = [-5]").is_err());
        assert!(Sweep::from_toml_str("[grid]\nseeds = [-1]").is_err());
        assert!(Sweep::from_toml_str("[grid]\nbackfill_depths = [-2]").is_err());
    }

    #[test]
    fn market_axes_parse_and_expand() {
        let sweep = Sweep::from_toml_str(
            r#"
[grid]
policies = ["adaptive"]
methods = ["cba"]
elasticities = [0.0, 1.0]
price_schedules = ["flat", "carbon:0.5"]
banking_caps = [0.0, 25.0]
"#,
        )
        .unwrap();
        assert_eq!(sweep.config_count(), 8);
        let cells = sweep.expand();
        assert_eq!(cells[0].spec.elasticity, 0.0);
        assert_eq!(cells[0].spec.price_schedule, PriceSpec::Flat);
        let last = &cells.last().unwrap().spec;
        assert_eq!(last.elasticity, 1.0);
        assert_eq!(last.price_schedule.label(), "carbon:0.500");
        assert_eq!(last.banking_cap, 25.0);
        assert!(last.market_active());

        assert!(Sweep::from_toml_str("[grid]\nelasticities = [-1.0]").is_err());
        assert!(Sweep::from_toml_str("[grid]\nbanking_caps = [-5.0]").is_err());
        assert!(Sweep::from_toml_str("[grid]\nprice_schedules = [\"surge\"]").is_err());
    }

    #[test]
    fn defaults_give_single_cell() {
        let sweep = Sweep::from_toml_str("name = \"minimal\"").unwrap();
        assert_eq!(sweep.cell_count(), 1);
        assert_eq!(sweep.expand()[0].spec.users, 24);
    }

    #[test]
    fn preset_sets_default_population() {
        let sweep = Sweep::from_toml_str("[workload]\npreset = \"quick\"").unwrap();
        assert_eq!(sweep.users, vec![60]);
    }

    #[test]
    fn override_preset_follows_defaults_but_keeps_pinned_users() {
        // Default population follows the preset override.
        let mut sweep = Sweep::from_toml_str("[workload]\npreset = \"tiny\"").unwrap();
        assert_eq!(sweep.users, vec![24]);
        sweep.override_preset(WorkloadPreset::Paper);
        assert_eq!(sweep.workload.preset, WorkloadPreset::Paper);
        assert_eq!(sweep.users, vec![250]);

        // An explicitly pinned axis survives — even when its value
        // happens to equal the old preset's default.
        let mut sweep =
            Sweep::from_toml_str("[workload]\npreset = \"tiny\"\n[grid]\nusers = [24]").unwrap();
        sweep.override_preset(WorkloadPreset::Paper);
        assert_eq!(sweep.users, vec![24], "pinned users must not be replaced");

        let mut sweep = Sweep::from_toml_str("[grid]\nusers = [24, 96]").unwrap();
        sweep.override_preset(WorkloadPreset::Quick);
        assert_eq!(sweep.users, vec![24, 96]);
    }
}
