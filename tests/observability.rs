//! The observability subsystem's two core contracts:
//!
//! 1. **Recording never changes the work.** `run_cell_in_obs` with a
//!    counting [`StatsRecorder`] must produce [`RunMetrics`] equal to
//!    the no-op run — same events, same outcomes, same carbon — and the
//!    recorder's own counters must agree with the metrics they mirror.
//! 2. **The no-op recorder is (close to) free.** The default path's
//!    probes are `if R::ENABLED` blocks over a `const false`, so the
//!    instrumented simulator must run at essentially the uninstrumented
//!    speed. The counting recorder pays one `Instant::now` pair per
//!    event arm plus relaxed atomics at loop exit — bounded here by a
//!    deliberately lenient factor so a shared CI runner can't flake the
//!    suite, while a catastrophic regression (per-event atomics, a
//!    syscall on the hot path) still fails loudly.

use std::time::Instant;

use green_batchsim::{
    intensity_for, run_cell_in, run_cell_in_obs, PlacementTable, Policy, SimArena, SimConfig,
};
use green_carbon::HourlyTrace;
use green_machines::simulation_fleet;
use green_obs::{Counter, NoopRecorder, Phase, StatsRecorder};
use green_perfmodel::{CrossMachinePredictor, MachineBehavior};
use green_workload::{Trace, TraceConfig};

struct World {
    fleet: Vec<green_machines::FleetMachine>,
    trace: Trace,
    table: PlacementTable,
    intensity: Vec<HourlyTrace>,
}

fn world() -> World {
    let fleet = simulation_fleet();
    let behaviors: Vec<MachineBehavior> = fleet
        .iter()
        .map(|m| MachineBehavior::for_spec(&m.spec))
        .collect();
    let predictor = CrossMachinePredictor::train(behaviors, 2, 11);
    let trace = Trace::generate(&TraceConfig::small(11), &predictor);
    let table = PlacementTable::build(&trace, &fleet, &predictor);
    let intensity = intensity_for(&fleet, 11);
    World {
        fleet,
        trace,
        table,
        intensity,
    }
}

fn config() -> SimConfig {
    SimConfig::new(Policy::Greedy, green_accounting::MethodKind::eba(), 24)
}

#[test]
fn recording_runs_are_work_identical_to_noop_runs() {
    let w = world();
    let mut arena = SimArena::new();
    let baseline = run_cell_in(
        &w.trace,
        &w.fleet,
        &w.table,
        &w.intensity,
        config(),
        &mut arena,
    );

    let recorder = StatsRecorder::new();
    let mut arena2 = SimArena::new();
    let recorded = run_cell_in_obs(
        &w.trace,
        &w.fleet,
        &w.table,
        &w.intensity,
        config(),
        &mut arena2,
        &recorder,
    );
    // Bit-identical work: the recorder observes the run, never steers it.
    assert_eq!(baseline, recorded);

    // The recorder's counters mirror the metrics they claim to count.
    assert_eq!(
        recorder.counter(Counter::EventsDrained),
        recorded.events as u64
    );
    assert!(recorder.counter(Counter::SchedulePasses) > 0);
    assert!(recorder.counter(Counter::ReadyUserMerges) > 0);
    // Phase attribution covers the loop: each booked phase is
    // non-negative and schedule dominates an arrival-heavy workload.
    for phase in [Phase::Schedule, Phase::Events, Phase::Attribute] {
        assert!(recorder.phase(phase) < u64::MAX);
    }
    assert!(recorder.phase(Phase::Schedule) > 0);
}

#[test]
fn noop_recorder_overhead_is_bounded() {
    let w = world();
    let mut arena = SimArena::new();
    // Warm caches/allocations once before timing anything.
    let warm = run_cell_in(
        &w.trace,
        &w.fleet,
        &w.table,
        &w.intensity,
        config(),
        &mut arena,
    );
    arena.recycle(warm);

    let min_of = |mut run: Box<dyn FnMut() -> f64>| -> f64 {
        (0..3).map(|_| run()).fold(f64::INFINITY, f64::min)
    };
    let mut arena = SimArena::new();
    let noop_s = {
        let (w, arena) = (&w, &mut arena);
        min_of(Box::new(move || {
            let start = Instant::now();
            let m = run_cell_in_obs(
                &w.trace,
                &w.fleet,
                &w.table,
                &w.intensity,
                config(),
                arena,
                &NoopRecorder,
            );
            let s = start.elapsed().as_secs_f64();
            arena.recycle(m);
            s
        }))
    };
    let mut arena = SimArena::new();
    let recorder = StatsRecorder::new();
    let stats_s = {
        let (w, arena, recorder) = (&w, &mut arena, &recorder);
        min_of(Box::new(move || {
            let start = Instant::now();
            let m = run_cell_in_obs(
                &w.trace,
                &w.fleet,
                &w.table,
                &w.intensity,
                config(),
                arena,
                recorder,
            );
            let s = start.elapsed().as_secs_f64();
            arena.recycle(m);
            s
        }))
    };
    // Lenient on purpose (shared runners, tiny absolute times): the
    // counting recorder may pay for its clock reads, but an order of
    // magnitude means something landed on the per-event hot path.
    assert!(
        stats_s < noop_s * 10.0 + 0.05,
        "counting recorder too slow: noop {noop_s:.4}s vs stats {stats_s:.4}s"
    );
}
