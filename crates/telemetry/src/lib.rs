//! Telemetry substrate: simulated RAPL energy counters, per-process
//! hardware performance counters, a topic bus, and the power-model
//! disaggregation pipeline that turns node-level energy into per-task
//! attributed energy.
//!
//! The paper's green-ACCESS endpoints poll the RAPL interface and hardware
//! counters, stream both through Kafka, and a Faust-based monitor
//! "periodically fit\[s\] a power model between performance counters and
//! measured energy", aggregating per-process estimates into task energy.
//! This crate reproduces that pipeline end to end:
//!
//! * [`sampler`] plays the role of the hardware: given the tasks running on
//!   a node it emits RAPL readings (with the real counter's 32-bit µJ wrap)
//!   and per-process counter samples, with measurement noise;
//! * [`bus`] is the in-process Kafka stand-in (crossbeam channels, topics);
//! * [`power_model`] fits `power ≈ w·[ips, llc_misses/s] + intercept` by
//!   ridge-regularized least squares;
//! * [`monitor`] is the streaming consumer: it ingests windows, maintains
//!   the model online, disaggregates node energy across tasks and emits
//!   [`TaskEnergyReport`]s when tasks finish.

pub mod bus;
pub mod counters;
pub mod linalg;
pub mod monitor;
pub mod power_model;
pub mod rapl;
pub mod sampler;

pub use bus::{Bus, Subscription};
pub use counters::{CounterSample, TaskId};
pub use monitor::{EndpointMonitor, TaskEnergyReport, TelemetryWindow};
pub use power_model::{PowerModel, PowerModelFitter};
pub use rapl::{RaplReading, RaplSimulator};
pub use sampler::{NodeSampler, RunningTask};
