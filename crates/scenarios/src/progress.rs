//! Live progress telemetry for shard workers.
//!
//! A shard invocation appends one [`ProgressRecord`] to a JSONL sidecar
//! (`<out>.progress`) at every manifest checkpoint — same cadence, same
//! atomic-rewrite durability, so a kill can tear neither file. Each
//! record is a flat one-line JSON object (the dialect of
//! [`green_bench::json`]): rows done vs expected, elapsed seconds,
//! derived rate/ETA, resident-set size, and — when the worker ran with
//! recording enabled — the per-phase wall-time breakdown from the
//! observability recorder.
//!
//! The sidecar keeps a bounded rolling history ([`PROGRESS_HISTORY`]
//! records, oldest dropped) rather than growing with the grid: a
//! million-cell shard checkpoints thousands of times, and the consumers
//! (`scenarios watch`, CI artifacts) only ever want the recent tail to
//! compute rates and detect stalls.

use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};

use green_bench::json::{fmt_num, quote, Json};

use crate::spec::SpecError;

/// Schema tag carried by every progress record (first key), so a
/// consumer can refuse a sidecar written by an incompatible build.
pub const PROGRESS_SCHEMA: &str = "green-progress/1";

/// Records kept in the rolling sidecar history. At the default
/// checkpoint interval this covers the last ~4096 configuration rows —
/// plenty for rate estimation, bounded for million-cell grids.
pub const PROGRESS_HISTORY: usize = 64;

/// The progress sidecar path of a shard CSV: `<csv>.progress`.
pub fn progress_path(csv: &Path) -> PathBuf {
    let mut name = csv.file_name().unwrap_or_default().to_os_string();
    name.push(".progress");
    csv.with_file_name(name)
}

// The write primitives both checkpoint sidecars ride on moved to the
// shared [`crate::durable_io`] module when it grew fsync discipline and
// chaos probes; the old names stay importable from here.
pub use crate::durable_io::{append_line, atomic_rewrite};

/// One heartbeat from a shard worker: a snapshot of where the run is
/// and how fast it is moving. Serialized as one JSON line.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressRecord {
    /// Sweep name (matches the manifest's `sweep`).
    pub sweep: String,
    /// Worker label (`"2/8"`, `"cells:A..B"`, `"0/1"`).
    pub shard: String,
    /// Configuration rows checkpointed so far (resumed rows included).
    pub rows: usize,
    /// Rows the assigned range will produce in total.
    pub expected_rows: usize,
    /// Seconds since this invocation started (monotonic clock — resumed
    /// work from earlier invocations is not included).
    pub elapsed_s: f64,
    /// Rows per second over this invocation (`0` until the first row).
    pub rate_rows_per_s: f64,
    /// Estimated seconds to completion at the current rate; `None`
    /// before a rate exists or once the shard is complete.
    pub eta_s: Option<f64>,
    /// Worker resident-set size in MiB (`VmRSS`); `None` off Linux.
    pub rss_mb: Option<f64>,
    /// Per-phase wall milliseconds from the observability recorder —
    /// empty when the worker ran with the default no-op recorder.
    pub phases_ms: Vec<(String, f64)>,
    /// True on the terminal record of a shard invocation that died on an
    /// error or panic ([`crate::run_shard`] appends it on the way down),
    /// so a consumer can tell a crash (terminal `failed` record) from a
    /// stall (heartbeats simply stop — the SIGKILL case).
    pub failed: bool,
    /// The error text of a `failed` record; `None` on healthy
    /// heartbeats.
    pub error: Option<String>,
    /// True on the final record of a finished shard.
    pub complete: bool,
}

impl ProgressRecord {
    /// Renders the record as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = format!(
            "{{\"schema\": {}, \"sweep\": {}, \"shard\": {}, \"rows\": {}, \
             \"expected_rows\": {}, \"elapsed_s\": {}, \"rate_rows_per_s\": {}",
            quote(PROGRESS_SCHEMA),
            quote(&self.sweep),
            quote(&self.shard),
            self.rows,
            self.expected_rows,
            fmt_num(self.elapsed_s),
            fmt_num(self.rate_rows_per_s),
        );
        out.push_str(", \"eta_s\": ");
        match self.eta_s {
            Some(eta) => out.push_str(&fmt_num(eta)),
            None => out.push_str("null"),
        }
        out.push_str(", \"rss_mb\": ");
        match self.rss_mb {
            Some(rss) => out.push_str(&fmt_num(rss)),
            None => out.push_str("null"),
        }
        out.push_str(", \"phases_ms\": {");
        for (i, (name, ms)) in self.phases_ms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", quote(name), fmt_num(*ms)));
        }
        out.push_str(&format!("}}, \"failed\": {}", self.failed));
        out.push_str(", \"error\": ");
        match &self.error {
            Some(error) => out.push_str(&quote(error)),
            None => out.push_str("null"),
        }
        out.push_str(&format!(", \"complete\": {}}}", self.complete));
        out
    }

    /// Parses one JSON line previously written by
    /// [`to_json_line`](Self::to_json_line).
    pub fn parse(line: &str) -> Result<ProgressRecord, SpecError> {
        let bad = |m: &str| SpecError(format!("bad progress record: {m}"));
        let v = Json::parse(line).map_err(|e| bad(&e))?;
        let schema = v
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing `schema`"))?;
        if schema != PROGRESS_SCHEMA {
            return Err(bad(&format!(
                "schema `{schema}` (this build reads `{PROGRESS_SCHEMA}`)"
            )));
        }
        let string = |key: &str| -> Result<String, SpecError> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(&format!("missing string `{key}`")))
        };
        let number = |key: &str| -> Result<f64, SpecError> {
            v.get(key)
                .and_then(Json::as_number)
                .ok_or_else(|| bad(&format!("missing number `{key}`")))
        };
        let optional = |key: &str| v.get(key).and_then(Json::as_number);
        let phases_ms = match v.get("phases_ms") {
            Some(Json::Object(fields)) => fields
                .iter()
                .map(|(k, ms)| {
                    ms.as_number()
                        .map(|ms| (k.clone(), ms))
                        .ok_or_else(|| bad(&format!("`phases_ms.{k}` must be a number")))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(bad("missing object `phases_ms`")),
        };
        Ok(ProgressRecord {
            sweep: string("sweep")?,
            shard: string("shard")?,
            rows: number("rows")? as usize,
            expected_rows: number("expected_rows")? as usize,
            elapsed_s: number("elapsed_s")?,
            rate_rows_per_s: number("rate_rows_per_s")?,
            eta_s: optional("eta_s"),
            rss_mb: optional("rss_mb"),
            phases_ms,
            // `failed`/`error` joined the schema with the orchestrator:
            // absent (old sidecars) reads as a healthy record.
            failed: v.get("failed").and_then(Json::as_bool).unwrap_or(false),
            error: v.get("error").and_then(Json::as_str).map(str::to_string),
            complete: v
                .get("complete")
                .and_then(Json::as_bool)
                .ok_or_else(|| bad("missing boolean `complete`"))?,
        })
    }

    /// Parses a whole sidecar (one record per non-empty line, oldest
    /// first). Strict: any bad line fails the whole parse — the right
    /// contract for tests and tools that must not paper over
    /// corruption.
    pub fn parse_sidecar(text: &str) -> Result<Vec<ProgressRecord>, SpecError> {
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .map(ProgressRecord::parse)
            .collect()
    }

    /// Parses a sidecar tolerantly: unparsable lines (a torn tail from
    /// a crash mid-write, a record from an incompatible build) are
    /// skipped and described in the returned warnings instead of
    /// failing the intact records around them. This is what live
    /// consumers (`scenarios watch`, the orchestrator's failure-text
    /// probe) use — a monitor that goes blind the moment a worker
    /// crashes ugliest is a monitor for healthy runs only.
    pub fn parse_sidecar_tolerant(text: &str) -> (Vec<ProgressRecord>, Vec<String>) {
        let mut records = Vec::new();
        let mut warnings = Vec::new();
        for (number, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match ProgressRecord::parse(line) {
                Ok(record) => records.push(record),
                Err(e) => warnings.push(format!("line {}: {e}", number + 1)),
            }
        }
        (records, warnings)
    }
}

/// The process's current resident set size in MiB, read from
/// `/proc/self/status` (`VmRSS`). `None` off Linux — progress records
/// treat it as advisory either way.
pub fn current_rss_mb() -> Option<f64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
        let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
        Some(kb / 1024.0)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Maintains a shard CSV's `.progress` sidecar: a bounded rolling
/// window of records, rewritten atomically on every append.
#[derive(Debug)]
pub struct ProgressWriter {
    path: PathBuf,
    lines: VecDeque<String>,
}

impl ProgressWriter {
    /// A writer for the sidecar of `csv`, starting with an empty
    /// history (an earlier invocation's sidecar is superseded on the
    /// first append — its records described a different invocation's
    /// rates).
    pub fn new(csv: &Path) -> ProgressWriter {
        ProgressWriter {
            path: progress_path(csv),
            lines: VecDeque::new(),
        }
    }

    /// Appends `record` and rewrites the sidecar atomically, dropping
    /// the oldest records beyond [`PROGRESS_HISTORY`].
    pub fn append(&mut self, record: &ProgressRecord) -> io::Result<()> {
        self.append_chaos(record, &green_chaos::NoopChaos)
    }

    /// [`append`](Self::append) with the `progress_rewrite` failpoint
    /// armed — the shard writer's heartbeat path.
    pub fn append_chaos<C: green_chaos::Chaos>(
        &mut self,
        record: &ProgressRecord,
        chaos: &C,
    ) -> io::Result<()> {
        if self.lines.len() >= PROGRESS_HISTORY {
            self.lines.pop_front();
        }
        self.lines.push_back(record.to_json_line());
        let mut text = String::with_capacity(self.lines.iter().map(|l| l.len() + 1).sum());
        for line in &self.lines {
            text.push_str(line);
            text.push('\n');
        }
        crate::durable_io::atomic_rewrite_chaos(
            &self.path,
            &text,
            chaos,
            green_chaos::Failpoint::ProgressRewrite,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> ProgressRecord {
        ProgressRecord {
            sweep: "mega".into(),
            shard: "2/8".into(),
            rows: 64,
            expected_rows: 480,
            elapsed_s: 12.5,
            rate_rows_per_s: 5.12,
            eta_s: Some(81.25),
            rss_mb: Some(48.7),
            phases_ms: vec![("schedule".into(), 6200.0), ("events".into(), 3100.5)],
            failed: false,
            error: None,
            complete: false,
        }
    }

    #[test]
    fn record_roundtrips_including_nulls() {
        let r = record();
        assert_eq!(ProgressRecord::parse(&r.to_json_line()).unwrap(), r);
        let bare = ProgressRecord {
            eta_s: None,
            rss_mb: None,
            phases_ms: vec![],
            complete: true,
            ..record()
        };
        let line = bare.to_json_line();
        assert!(line.contains("\"eta_s\": null"), "{line}");
        assert!(line.contains("\"complete\": true"), "{line}");
        assert_eq!(ProgressRecord::parse(&line).unwrap(), bare);
    }

    #[test]
    fn failed_records_roundtrip_and_old_records_read_healthy() {
        let failed = ProgressRecord {
            failed: true,
            error: Some("chaos: injected failure after 3 rows".into()),
            ..record()
        };
        let line = failed.to_json_line();
        assert!(line.contains("\"failed\": true"), "{line}");
        assert_eq!(ProgressRecord::parse(&line).unwrap(), failed);
        // A pre-orchestrator record (no `failed`/`error` keys) still
        // parses, as a healthy record.
        let old = record()
            .to_json_line()
            .replace(", \"failed\": false, \"error\": null", "");
        let parsed = ProgressRecord::parse(&old).unwrap();
        assert!(!parsed.failed);
        assert_eq!(parsed.error, None);
    }

    #[test]
    fn append_line_grows_a_log_without_rewriting_it() {
        let dir = std::env::temp_dir().join(format!("green-append-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let log = dir.join("events.jsonl");
        append_line(&log, "{\"a\": 1}").unwrap();
        append_line(&log, "{\"b\": 2}").unwrap();
        assert_eq!(
            std::fs::read_to_string(&log).unwrap(),
            "{\"a\": 1}\n{\"b\": 2}\n"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tolerant_parse_skips_torn_lines_with_warnings() {
        let good = record();
        let mut text = good.to_json_line();
        text.push('\n');
        text.push_str("{\"schema\": \"green-progress/1\", \"sw"); // torn tail
        let (records, warnings) = ProgressRecord::parse_sidecar_tolerant(&text);
        assert_eq!(records, vec![good]);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].starts_with("line 2:"), "{warnings:?}");
        // Strict parse still refuses the same text.
        assert!(ProgressRecord::parse_sidecar(&text).is_err());
        // A healthy sidecar produces no warnings.
        let (_, warnings) = ProgressRecord::parse_sidecar_tolerant(&record().to_json_line());
        assert!(warnings.is_empty());
    }

    #[test]
    fn parse_rejects_other_schemas_and_garbage() {
        let other = record().to_json_line().replace("green-progress/1", "v9");
        assert!(ProgressRecord::parse(&other).is_err());
        assert!(ProgressRecord::parse("not json").is_err());
        assert!(ProgressRecord::parse("{}").is_err());
    }

    #[test]
    fn writer_keeps_a_bounded_rolling_history() {
        let dir = std::env::temp_dir().join(format!("green-progress-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("shard0.csv");
        let mut writer = ProgressWriter::new(&csv);
        for i in 0..(PROGRESS_HISTORY + 10) {
            let mut r = record();
            r.rows = i;
            writer.append(&r).unwrap();
        }
        let text = std::fs::read_to_string(progress_path(&csv)).unwrap();
        let records = ProgressRecord::parse_sidecar(&text).unwrap();
        assert_eq!(records.len(), PROGRESS_HISTORY);
        // Oldest records were dropped; the tail is the latest appends.
        assert_eq!(records.first().unwrap().rows, 10);
        assert_eq!(records.last().unwrap().rows, PROGRESS_HISTORY + 9);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sidecar_path_appends_progress_suffix() {
        assert_eq!(
            progress_path(Path::new("out/shard0.csv")),
            Path::new("out/shard0.csv.progress")
        );
    }
}
