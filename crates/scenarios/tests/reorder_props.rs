//! Property tests for the parallel sweep's in-order commit machinery
//! ([`ReorderBuffer`] + [`ClaimWindow`]): whatever order workers finish
//! in, rows commit strictly in expansion order, each exactly once, and
//! the parked set never outgrows the claim window. These are the
//! scheduling-level half of the `--threads` byte-identity contract; the
//! output-level half is `tests/parallel_golden.rs`.

use green_scenarios::{ClaimWindow, ReorderBuffer};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Offers `0..n` to a fresh buffer in the order given by `arrival`
/// (a permutation) and returns the commit sequence.
fn drive(arrival: &[usize]) -> Vec<usize> {
    let mut buffer = ReorderBuffer::new();
    let mut committed = Vec::new();
    for &index in arrival {
        buffer.offer(index, index, |i, v| {
            assert_eq!(i, v, "item {v} committed under index {i}");
            committed.push(i);
        });
    }
    assert!(buffer.is_empty(), "items parked after a full permutation");
    assert_eq!(buffer.committed(), arrival.len());
    committed
}

/// Runs `threads` workers over `0..n` through the same claim-throttled
/// loop `SweepRunner::execute` uses — an atomic ticket counter, a
/// [`ClaimWindow`] admit/complete pair, and a mutexed [`ReorderBuffer`]
/// as the sink — and returns the global commit sequence.
fn drive_pool(n: usize, threads: usize, window: usize) -> Vec<usize> {
    let next = AtomicUsize::new(0);
    let claims = ClaimWindow::new(window);
    let sink: Mutex<(ReorderBuffer<usize>, Vec<usize>)> =
        Mutex::new((ReorderBuffer::new(), Vec::new()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                claims.admit(i);
                let offered = claims.completing(i);
                {
                    let mut sink = sink.lock().unwrap();
                    let (buffer, committed) = &mut *sink;
                    buffer.offer(i, i, |index, _| committed.push(index));
                    assert!(
                        buffer.parked() <= window,
                        "parked {} items past a window of {window}",
                        buffer.parked()
                    );
                }
                drop(offered);
            });
        }
    });
    let sink = sink.into_inner().unwrap();
    assert!(sink.0.is_empty(), "items parked after the pool drained");
    sink.1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any arrival permutation commits `0..n` exactly, in order: the
    /// buffer never releases index `i + 1` before index `i`.
    #[test]
    fn commits_every_index_in_order(arrival in prop::collection::vec(0usize..64, 1..64)
        .prop_map(|seed| {
            // Turn an arbitrary vector into a permutation of its indices
            // by sorting positions with the vector as (stable) keys.
            let mut order: Vec<usize> = (0..seed.len()).collect();
            order.sort_by_key(|&i| seed[i]);
            order
        })
    ) {
        let committed = drive(&arrival);
        let expected: Vec<usize> = (0..arrival.len()).collect();
        prop_assert_eq!(committed, expected);
    }

    /// A real worker pool — any thread count, any window, any range
    /// length — covers the range exactly once, in order. This is the
    /// exact-cover property behind `--threads N` output identity:
    /// scheduling freedom never duplicates, drops, or reorders a row.
    #[test]
    fn pool_commits_exact_cover_for_any_worker_count(
        n in 0usize..200,
        threads in 1usize..9,
        window in 1usize..33,
    ) {
        let committed = drive_pool(n, threads, window);
        let expected: Vec<usize> = (0..n).collect();
        prop_assert_eq!(committed, expected);
    }

    /// Splitting a range across claim windows never parks more items
    /// than the window allows: the claim throttle bounds the reorder
    /// buffer's memory no matter how adversarial the finish order is.
    #[test]
    fn parked_never_exceeds_the_window(
        n in 1usize..120,
        threads in 2usize..9,
    ) {
        // The assertion lives inside drive_pool's sink critical section.
        drive_pool(n, threads, threads * 2);
    }
}

#[test]
fn single_worker_degenerates_to_serial() {
    let committed = drive_pool(17, 1, 1);
    assert_eq!(committed, (0..17).collect::<Vec<_>>());
}

#[test]
fn wide_pool_with_minimal_window_stays_live() {
    // window = 1 is the harshest throttle: every claim past the prefix
    // blocks. Liveness (see reorder.rs module docs) still guarantees
    // completion.
    let committed = drive_pool(64, 8, 1);
    assert_eq!(committed, (0..64).collect::<Vec<_>>());
}
