//! Tiled Cholesky task-graph generation.
//!
//! For a lower-triangular factorization over a `T × T` tile grid, step `k`
//! produces:
//!
//! * `POTRF(k)` — factor the diagonal tile; depends on the last update of
//!   `A[k][k]`;
//! * `TRSM(i, k)` for `i > k` — triangular solves against the panel;
//! * `SYRK(i, k)` for `i > k` — symmetric rank-k update of diagonal tiles;
//! * `GEMM(i, j, k)` for `i > j > k` — trailing-matrix updates.

use serde::{Deserialize, Serialize};

/// Index of a task within its DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u32);

/// The four Cholesky kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelKind {
    /// Diagonal-tile factorization.
    Potrf,
    /// Panel triangular solve.
    Trsm,
    /// Diagonal symmetric update.
    Syrk,
    /// Off-diagonal update.
    Gemm,
}

impl KernelKind {
    /// Kernel flop count for a `b × b` tile.
    pub fn flops(self, tile: u64) -> f64 {
        let b = tile as f64;
        match self {
            KernelKind::Potrf => b * b * b / 3.0,
            KernelKind::Trsm => b * b * b,
            KernelKind::Syrk => b * b * b,
            KernelKind::Gemm => 2.0 * b * b * b,
        }
    }

    /// Tiles moved over the host link per task (operands in + result out)
    /// for the out-of-core regime where nothing stays resident.
    pub fn tiles_moved(self) -> u32 {
        match self {
            KernelKind::Potrf => 2, // in + out
            KernelKind::Trsm => 3,
            KernelKind::Syrk => 3,
            KernelKind::Gemm => 4,
        }
    }

    /// Scheduling priority class: panel work unblocks the most.
    pub fn priority(self) -> u8 {
        match self {
            KernelKind::Potrf => 3,
            KernelKind::Trsm => 2,
            KernelKind::Syrk => 1,
            KernelKind::Gemm => 0,
        }
    }
}

/// One node of the DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Task id (index).
    pub id: TaskId,
    /// Kernel type.
    pub kind: KernelKind,
    /// Elimination step `k`.
    pub step: u32,
    /// Tasks that must complete first.
    pub deps: Vec<TaskId>,
}

/// A generated tiled-Cholesky DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CholeskyDag {
    /// Tile grid dimension `T`.
    pub tiles: u32,
    /// Tile edge length `b` (elements).
    pub tile_size: u64,
    /// Tasks, topologically ordered by construction.
    pub tasks: Vec<Task>,
}

impl CholeskyDag {
    /// Builds the DAG for a `tiles × tiles` grid of `tile_size²` tiles.
    // The k/i/j index walk mirrors the textbook tiled-Cholesky loop nest;
    // iterator adaptors would obscure the dependency structure.
    #[allow(clippy::needless_range_loop)]
    pub fn new(tiles: u32, tile_size: u64) -> CholeskyDag {
        assert!(tiles >= 1, "need at least one tile");
        let t = tiles as usize;
        let mut tasks: Vec<Task> = Vec::new();
        // writer[i][j] = last task that wrote tile (i, j).
        let mut writer: Vec<Vec<Option<TaskId>>> = vec![vec![None; t]; t];
        let push = |kind: KernelKind, step: u32, deps: Vec<TaskId>, tasks: &mut Vec<Task>| {
            let id = TaskId(tasks.len() as u32);
            tasks.push(Task {
                id,
                kind,
                step,
                deps,
            });
            id
        };

        for k in 0..t {
            // POTRF(k): consumes A[k][k].
            let deps: Vec<TaskId> = writer[k][k].into_iter().collect();
            let potrf = push(KernelKind::Potrf, k as u32, deps, &mut tasks);
            writer[k][k] = Some(potrf);

            // TRSM(i, k): consumes POTRF(k) and A[i][k].
            for i in k + 1..t {
                let mut deps = vec![potrf];
                deps.extend(writer[i][k]);
                let trsm = push(KernelKind::Trsm, k as u32, deps, &mut tasks);
                writer[i][k] = Some(trsm);
            }

            // Updates: SYRK on diagonals, GEMM off-diagonal.
            for i in k + 1..t {
                let panel_i = writer[i][k].expect("TRSM wrote A[i][k]");
                // SYRK(i,k): A[i][i] -= A[i][k]·A[i][k]ᵀ.
                let mut deps = vec![panel_i];
                deps.extend(writer[i][i]);
                let syrk = push(KernelKind::Syrk, k as u32, deps, &mut tasks);
                writer[i][i] = Some(syrk);
                // GEMM(i,j,k) for k < j < i: A[i][j] -= A[i][k]·A[j][k]ᵀ.
                for j in k + 1..i {
                    let panel_j = writer[j][k].expect("TRSM wrote A[j][k]");
                    let mut deps = vec![panel_i, panel_j];
                    deps.extend(writer[i][j]);
                    let gemm = push(KernelKind::Gemm, k as u32, deps, &mut tasks);
                    writer[i][j] = Some(gemm);
                }
            }
        }

        CholeskyDag {
            tiles,
            tile_size,
            tasks,
        }
    }

    /// The paper's problem: a 42 GB single-precision matrix. 40 × 40 tiles
    /// of 2560² floats ⇒ n = 102,400, n²·4 B ≈ 42 GB.
    pub fn paper_problem() -> CholeskyDag {
        CholeskyDag::new(40, 2_560)
    }

    /// Bytes per tile (single precision).
    pub fn tile_bytes(&self) -> f64 {
        (self.tile_size * self.tile_size * 4) as f64
    }

    /// Total flop count of the factorization.
    pub fn total_flops(&self) -> f64 {
        self.tasks
            .iter()
            .map(|t| t.kind.flops(self.tile_size))
            .sum()
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True for an empty DAG (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Count of tasks of one kind.
    pub fn count(&self, kind: KernelKind) -> usize {
        self.tasks.iter().filter(|t| t.kind == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_counts_match_closed_forms() {
        let t = 10u64;
        let dag = CholeskyDag::new(t as u32, 64);
        assert_eq!(dag.count(KernelKind::Potrf) as u64, t);
        assert_eq!(dag.count(KernelKind::Trsm) as u64, t * (t - 1) / 2);
        assert_eq!(dag.count(KernelKind::Syrk) as u64, t * (t - 1) / 2);
        assert_eq!(
            dag.count(KernelKind::Gemm) as u64,
            t * (t - 1) * (t - 2) / 6
        );
    }

    #[test]
    fn construction_order_is_topological() {
        let dag = CholeskyDag::new(8, 64);
        for task in &dag.tasks {
            for dep in &task.deps {
                assert!(dep.0 < task.id.0, "dep {dep:?} after {:?}", task.id);
            }
        }
    }

    #[test]
    fn total_flops_close_to_n_cubed_over_three() {
        let dag = CholeskyDag::new(40, 2_560);
        let n = 40.0 * 2_560.0;
        let expect = n * n * n / 3.0;
        let got = dag.total_flops();
        assert!(
            (got - expect).abs() / expect < 0.05,
            "{got:e} vs {expect:e}"
        );
    }

    #[test]
    fn paper_problem_is_42_gb() {
        let dag = CholeskyDag::paper_problem();
        let total_bytes = dag.tile_bytes() * (dag.tiles as f64).powi(2);
        assert!((total_bytes / 1e9 - 41.9).abs() < 1.0, "{total_bytes:e}");
    }

    #[test]
    fn single_tile_is_one_potrf() {
        let dag = CholeskyDag::new(1, 128);
        assert_eq!(dag.len(), 1);
        assert_eq!(dag.tasks[0].kind, KernelKind::Potrf);
        assert!(dag.tasks[0].deps.is_empty());
    }

    #[test]
    fn kernel_flops_ratios() {
        // GEMM does 2b³, TRSM/SYRK b³, POTRF b³/3.
        let b = 256;
        assert!((KernelKind::Gemm.flops(b) / KernelKind::Trsm.flops(b) - 2.0).abs() < 1e-12);
        assert!((KernelKind::Trsm.flops(b) / KernelKind::Potrf.flops(b) - 3.0).abs() < 1e-12);
    }
}
