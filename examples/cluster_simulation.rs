//! Batch-simulation walkthrough: replay a reduced HPC workload against
//! the Table 5 fleet under every machine-selection policy and compare
//! work completed, energy and carbon (Figures 5–6 at example scale).
//!
//! ```text
//! cargo run --release --example cluster_simulation
//! ```

use green_batchsim::metrics::cost;
use green_batchsim::{PlacementTable, Scenario};
use green_machines::simulation_fleet;
use green_perfmodel::{CrossMachinePredictor, MachineBehavior};
use green_workload::{Trace, TraceConfig, TraceStats};

fn main() {
    // 1. Train the two-stage predictor (GMM + KNN) on the synthetic
    //    benchmark campaign.
    let fleet = simulation_fleet();
    let behaviors: Vec<MachineBehavior> = fleet
        .iter()
        .map(|m| MachineBehavior::for_spec(&m.spec))
        .collect();
    let predictor = CrossMachinePredictor::train(behaviors, 2, 42);

    // 2. Synthesize the workload and extrapolate it to every machine.
    let trace = Trace::generate(&TraceConfig::small(42), &predictor).doubled();
    println!("workload:\n{}\n", TraceStats::of(&trace));
    let table = PlacementTable::build(&trace, &fleet, &predictor);

    // 3. Run the EBA scenario: all eight policies in parallel.
    let scenario = Scenario::eba(42, 24);
    let results = scenario.run(&trace, &table);

    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>10}",
        "policy", "work (kch)", "energy MWh", "carbon kg", "makespan h"
    );
    let allocation_work = results.work_with_fixed_allocation(cost::EBA);
    for run in &results.runs {
        let work = allocation_work
            .iter()
            .find(|(n, _)| *n == run.policy)
            .map(|(_, w)| *w)
            .unwrap_or(0.0);
        println!(
            "{:<22} {:>12.1} {:>12.2} {:>12.0} {:>10.0}",
            run.policy,
            work / 1.0e3,
            run.total_energy_mwh(),
            run.attributed_carbon_kg(),
            run.makespan_hours(),
        );
    }

    let greedy = results.run("Greedy").expect("greedy run");
    let eft = results.run("EFT").expect("eft run");
    println!(
        "\nGreedy used {:.0}% of EFT's energy while completing {:.0}% more work \
         within the same allocation — the paper's Section 5.4 headline.",
        100.0 * greedy.total_energy_mwh() / eft.total_energy_mwh(),
        100.0
            * (allocation_work[0].1
                / allocation_work
                    .iter()
                    .find(|(n, _)| n == "EFT")
                    .map(|(_, w)| *w)
                    .unwrap()
                - 1.0),
    );
}
