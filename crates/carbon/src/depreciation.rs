//! Depreciation schedules for attributing embodied carbon over a machine's
//! lifetime.
//!
//! The paper treats embodied carbon "like a capital expense invested in the
//! machine that depreciates over time" and argues for **accelerated**
//! depreciation (double-declining balance at a 5-year refresh period, i.e. a
//! 40 % annual rate): machines are charged more embodied carbon early in
//! life, rewarding users who keep older hardware productive.

use green_units::{CarbonMass, CarbonRate, HOURS_PER_YEAR};
use serde::{Deserialize, Serialize};

/// A rule for spreading a machine's total embodied carbon `C_f` over its
/// service years.
pub trait DepreciationSchedule: Send + Sync {
    /// Embodied carbon still unattributed at the start of year `y`
    /// (`R_f(y)` in the paper; `R_f(0) = C_f`).
    fn remaining(&self, total: CarbonMass, year: u32) -> CarbonMass;

    /// Embodied carbon attributed to service year `y`
    /// (`D_f(y)` in the paper).
    fn allocated_to_year(&self, total: CarbonMass, year: u32) -> CarbonMass;

    /// The hourly carbon charge rate during year `y`:
    /// `D_f(y) / (24 * 365)`.
    fn hourly_rate(&self, total: CarbonMass, year: u32) -> CarbonRate {
        CarbonRate::from_g_per_hour(self.allocated_to_year(total, year).as_grams() / HOURS_PER_YEAR)
    }
}

/// Straight-line depreciation: `C_f / lifetime` per year, zero afterwards.
/// This is the "standard practice" baseline (SCI-style linear attribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinearDepreciation {
    /// Service lifetime in years.
    pub lifetime_years: u32,
}

impl LinearDepreciation {
    /// The paper's default 5-year refresh period.
    pub fn standard() -> Self {
        LinearDepreciation { lifetime_years: 5 }
    }
}

impl DepreciationSchedule for LinearDepreciation {
    fn remaining(&self, total: CarbonMass, year: u32) -> CarbonMass {
        if year >= self.lifetime_years {
            CarbonMass::ZERO
        } else {
            total * (1.0 - year as f64 / self.lifetime_years as f64)
        }
    }

    fn allocated_to_year(&self, total: CarbonMass, year: u32) -> CarbonMass {
        if year >= self.lifetime_years {
            CarbonMass::ZERO
        } else {
            total / self.lifetime_years as f64
        }
    }
}

/// Double-declining-balance depreciation: each year attributes a fixed
/// fraction `2 / lifetime` of the *remaining* balance.
///
/// With the paper's 5-year lifetime the annual rate is 40 %, so
/// `R_f(y) = C_f · 0.6^y` and `D_f(y) = 0.4 · R_f(y)`. Unlike accounting
/// practice, the paper does not switch to straight-line at the crossover nor
/// stop at the lifetime — old machines keep a small, ever-declining rate,
/// which is exactly the incentive the authors want.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DoubleDecliningBalance {
    /// Service lifetime in years; the annual rate is `2 / lifetime_years`.
    pub lifetime_years: u32,
}

impl DoubleDecliningBalance {
    /// The paper's default: 5-year lifetime, 40 % annual rate.
    pub fn standard() -> Self {
        DoubleDecliningBalance { lifetime_years: 5 }
    }

    /// The annual depreciation rate (0.4 for the standard schedule).
    pub fn annual_rate(&self) -> f64 {
        2.0 / self.lifetime_years as f64
    }
}

impl DepreciationSchedule for DoubleDecliningBalance {
    fn remaining(&self, total: CarbonMass, year: u32) -> CarbonMass {
        total * (1.0 - self.annual_rate()).powi(year as i32)
    }

    fn allocated_to_year(&self, total: CarbonMass, year: u32) -> CarbonMass {
        self.remaining(total, year) * self.annual_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOTAL: f64 = 1_000_000.0; // 1 tCO2e in grams

    #[test]
    fn linear_allocates_evenly_then_stops() {
        let lin = LinearDepreciation::standard();
        let total = CarbonMass::from_grams(TOTAL);
        for y in 0..5 {
            assert!((lin.allocated_to_year(total, y).as_grams() - TOTAL / 5.0).abs() < 1e-9);
        }
        assert_eq!(lin.allocated_to_year(total, 5), CarbonMass::ZERO);
        assert_eq!(lin.remaining(total, 5), CarbonMass::ZERO);
        assert!((lin.remaining(total, 2).as_grams() - TOTAL * 0.6).abs() < 1e-9);
    }

    #[test]
    fn ddb_matches_paper_formulas() {
        let ddb = DoubleDecliningBalance::standard();
        let total = CarbonMass::from_grams(TOTAL);
        assert!((ddb.annual_rate() - 0.4).abs() < 1e-12);
        // R_f(y) = C * 0.6^y
        for y in 0..10 {
            let expect = TOTAL * 0.6f64.powi(y as i32);
            assert!((ddb.remaining(total, y).as_grams() - expect).abs() < 1e-6);
            assert!((ddb.allocated_to_year(total, y).as_grams() - 0.4 * expect).abs() < 1e-6);
        }
    }

    #[test]
    fn ddb_front_loads_relative_to_linear() {
        let ddb = DoubleDecliningBalance::standard();
        let lin = LinearDepreciation::standard();
        let total = CarbonMass::from_grams(TOTAL);
        // Year 0: accelerated charges more than linear.
        assert!(ddb.allocated_to_year(total, 0) > lin.allocated_to_year(total, 0));
        // Year 4: accelerated charges less.
        assert!(ddb.allocated_to_year(total, 4) < lin.allocated_to_year(total, 4));
    }

    #[test]
    fn hourly_rate_is_yearly_over_8760() {
        let ddb = DoubleDecliningBalance::standard();
        let total = CarbonMass::from_grams(TOTAL);
        let rate = ddb.hourly_rate(total, 0);
        assert!((rate.as_g_per_hour() - 0.4 * TOTAL / 8760.0).abs() < 1e-9);
    }

    #[test]
    fn ddb_yearly_allocations_telescope() {
        // Sum of allocations over n years equals total minus remaining.
        let ddb = DoubleDecliningBalance::standard();
        let total = CarbonMass::from_grams(TOTAL);
        let sum: f64 = (0..7)
            .map(|y| ddb.allocated_to_year(total, y).as_grams())
            .sum();
        let expect = TOTAL - ddb.remaining(total, 7).as_grams();
        assert!((sum - expect).abs() < 1e-6);
    }
}
