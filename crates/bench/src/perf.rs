//! Machine-readable perf reports and the CI regression gate.
//!
//! A [`PerfReport`] is what the `green-perf` binary emits: per-bench
//! **deterministic work counters** (events processed, cells executed,
//! realizations built — quantities that cannot vary between runs of the
//! same code) alongside wall-clock milliseconds and derived rates.
//!
//! The gate ([`PerfReport::compare`]) treats the two kinds of numbers
//! differently, because CI runners are noisy but work counts are not:
//!
//! * a counter drifting beyond tolerance against the committed baseline
//!   **fails** — the code started doing measurably more (or different)
//!   work, e.g. a cache stopped deduplicating realizations;
//! * wall time drifting only **warns** — a shared GitHub runner can be
//!   2× slower for reasons that have nothing to do with the diff.
//!
//! The JSON codec is deliberately minimal (flat schema, no escapes
//! beyond the basics) so the repository needs no serde engine: the
//! vendored `serde` is a marker shim.

use std::fmt::Write as _;

use crate::json::{fmt_num, quote, Json};

/// One benchmark's numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfBench {
    /// Bench name (`sim_year`, `attribution`, `sweep_grid`, …).
    pub name: String,
    /// Wall-clock time of the measured section, milliseconds.
    pub wall_ms: f64,
    /// Process peak RSS (high-water mark) sampled when the bench
    /// finished, in MiB. Best-effort: read from `/proc/self/status` on
    /// Linux, `None` elsewhere; runners that can reset the high-water
    /// mark between benches (Linux `/proc/self/clear_refs`) make this
    /// approximate the bench's *own* peak rather than the process
    /// lifetime's. Like wall time it is machine-dependent, so the gate
    /// only warns on drift — but it makes allocation regressions (a
    /// broken arena, a cache that stopped sharing) visible in the
    /// committed baseline.
    pub peak_rss_mb: Option<f64>,
    /// Deterministic work counters (name → count). Run-to-run stable on
    /// identical code; the gate fails when they drift.
    pub counters: Vec<(String, f64)>,
    /// Per-phase wall-time attribution (phase name → milliseconds),
    /// present when the suite ran with recording enabled (`green-perf
    /// --phases`). Wall-clock derived, so the gate treats drift as
    /// warn-only — the counters already gate the work itself.
    pub phases: Vec<(String, f64)>,
    /// Derived throughput rates (name → per-second value). Reported for
    /// humans; the gate ignores them.
    pub rates: Vec<(String, f64)>,
}

/// The process's peak resident set size in MiB, read from
/// `/proc/self/status` (`VmHWM`). `None` off Linux or when the field is
/// unavailable — callers treat the value as advisory either way.
pub fn peak_rss_mb() -> Option<f64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
        let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
        Some(kb / 1024.0)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Resets the process's RSS high-water mark (`VmHWM`) so the next
/// [`peak_rss_mb`] read approximates the peak of the work that follows
/// rather than the process lifetime's. Linux only (`echo 5 >
/// /proc/self/clear_refs`); returns whether the kernel accepted the
/// reset, `false` elsewhere or without permission — callers treat the
/// whole mechanism as best-effort.
///
/// Benches that run back to back in one process **must** call this
/// before starting their measured section, not rely on an earlier
/// bench having done so: a multi-threaded bench's worker pool keeps
/// touching pages until its scope joins, so a reset issued before the
/// *previous* bench still carries that bench's high-water mark into
/// this one's reading.
pub fn reset_peak_rss() -> bool {
    #[cfg(target_os = "linux")]
    {
        std::fs::write("/proc/self/clear_refs", "5").is_ok()
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

/// A full perf-suite report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PerfReport {
    /// One entry per bench, in suite order.
    pub benches: Vec<PerfBench>,
}

/// The gate's verdict: hard failures (counters) and advisory warnings
/// (wall time / peak RSS).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Comparison {
    /// Counter drifts beyond tolerance — fail the build.
    pub failures: Vec<String>,
    /// The offending metrics as `bench.counter` names, parallel to
    /// `failures` — so a failing gate can say *which* counter regressed
    /// instead of exiting with a bare status code.
    pub failed_counters: Vec<String>,
    /// Wall-time drifts beyond tolerance — report, don't fail.
    pub warnings: Vec<String>,
}

impl Comparison {
    /// True when no counter regressed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

impl PerfReport {
    /// Looks a bench up by name.
    pub fn bench(&self, name: &str) -> Option<&PerfBench> {
        self.benches.iter().find(|b| b.name == name)
    }

    /// Serializes the report as stable, diff-friendly JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"green-perf/1\",\n  \"benches\": {\n");
        for (i, bench) in self.benches.iter().enumerate() {
            let _ = writeln!(out, "    {}: {{", quote(&bench.name));
            let _ = writeln!(out, "      \"wall_ms\": {},", fmt_num(bench.wall_ms));
            if let Some(rss) = bench.peak_rss_mb {
                let _ = writeln!(out, "      \"peak_rss_mb\": {},", fmt_num(rss));
            }
            let _ = writeln!(out, "      \"counters\": {{{}}},", pairs(&bench.counters));
            if !bench.phases.is_empty() {
                let _ = writeln!(out, "      \"phases\": {{{}}},", pairs(&bench.phases));
            }
            let _ = writeln!(out, "      \"rates\": {{{}}}", pairs(&bench.rates));
            out.push_str("    }");
            out.push_str(if i + 1 < self.benches.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parses a report previously written by [`to_json`](Self::to_json)
    /// (or hand-edited to the same flat schema).
    pub fn parse(text: &str) -> Result<PerfReport, String> {
        let root = Json::parse(text)?;
        let benches = root
            .get("benches")
            .ok_or("missing `benches` object")?
            .as_object()
            .ok_or("`benches` must be an object")?;
        let mut report = PerfReport::default();
        for (name, body) in benches {
            let body = body.as_object().ok_or("bench body must be an object")?;
            let wall_ms = body
                .iter()
                .find(|(k, _)| k == "wall_ms")
                .and_then(|(_, v)| v.as_number())
                .ok_or_else(|| format!("bench `{name}` missing numeric `wall_ms`"))?;
            let numbers = |key: &str| -> Result<Vec<(String, f64)>, String> {
                let Some((_, v)) = body.iter().find(|(k, _)| k == key) else {
                    return Ok(Vec::new());
                };
                let obj = v
                    .as_object()
                    .ok_or_else(|| format!("bench `{name}`: `{key}` must be an object"))?;
                obj.iter()
                    .map(|(k, v)| {
                        v.as_number()
                            .map(|n| (k.clone(), n))
                            .ok_or_else(|| format!("bench `{name}`: `{key}.{k}` must be a number"))
                    })
                    .collect()
            };
            report.benches.push(PerfBench {
                name: name.clone(),
                wall_ms,
                peak_rss_mb: body
                    .iter()
                    .find(|(k, _)| k == "peak_rss_mb")
                    .and_then(|(_, v)| v.as_number()),
                counters: numbers("counters")?,
                phases: numbers("phases")?,
                rates: numbers("rates")?,
            });
        }
        Ok(report)
    }

    /// Gates `self` (the current run) against `baseline`: every baseline
    /// counter must stay within `tolerance` (relative, e.g. `0.2` =
    /// ±20 %); wall time beyond `wall_tolerance` only warns.
    pub fn compare(
        &self,
        baseline: &PerfReport,
        tolerance: f64,
        wall_tolerance: f64,
    ) -> Comparison {
        let mut cmp = Comparison::default();
        for base in &baseline.benches {
            let Some(current) = self.bench(&base.name) else {
                cmp.failures.push(format!(
                    "bench `{}` missing from the current run",
                    base.name
                ));
                cmp.failed_counters.push(base.name.clone());
                continue;
            };
            for (counter, expected) in &base.counters {
                let Some((_, actual)) = current.counters.iter().find(|(k, _)| k == counter) else {
                    cmp.failures.push(format!(
                        "{}: counter `{counter}` missing from the current run",
                        base.name
                    ));
                    cmp.failed_counters.push(format!("{}.{counter}", base.name));
                    continue;
                };
                let drift = relative_drift(*actual, *expected);
                if drift > tolerance {
                    cmp.failures.push(format!(
                        "{}: counter `{counter}` drifted {:+.1}% (baseline {}, now {})",
                        base.name,
                        100.0 * (actual - expected) / expected.max(1e-12),
                        fmt_num(*expected),
                        fmt_num(*actual),
                    ));
                    cmp.failed_counters.push(format!("{}.{counter}", base.name));
                }
            }
            let wall_drift = (current.wall_ms - base.wall_ms) / base.wall_ms.max(1e-12);
            if wall_drift > wall_tolerance {
                cmp.warnings.push(format!(
                    "{}: wall time {:+.1}% (baseline {:.1} ms, now {:.1} ms) — wall is warn-only",
                    base.name,
                    100.0 * wall_drift,
                    base.wall_ms,
                    current.wall_ms,
                ));
            }
            // Peak RSS is machine-dependent like wall time: growth beyond
            // the wall tolerance warns, never fails.
            if let (Some(base_rss), Some(rss)) = (base.peak_rss_mb, current.peak_rss_mb) {
                let rss_drift = (rss - base_rss) / base_rss.max(1e-12);
                if rss_drift > wall_tolerance {
                    cmp.warnings.push(format!(
                        "{}: peak RSS {:+.1}% (baseline {:.1} MB, now {:.1} MB) — RSS is warn-only",
                        base.name,
                        100.0 * rss_drift,
                        base_rss,
                        rss,
                    ));
                }
            }
            // Phase timings are wall-clock attribution: growth beyond
            // the wall tolerance warns, never fails — the work counters
            // already gate what each phase *does*.
            for (phase, expected) in &base.phases {
                let Some((_, actual)) = current.phases.iter().find(|(k, _)| k == phase) else {
                    cmp.warnings.push(format!(
                        "{}: phase `{phase}` missing from the current run — phases are warn-only",
                        base.name
                    ));
                    continue;
                };
                let drift = (actual - expected) / expected.abs().max(1e-12);
                if drift > wall_tolerance {
                    cmp.warnings.push(format!(
                        "{}: phase `{phase}` {:+.1}% (baseline {:.1} ms, now {:.1} ms) — \
                         phases are warn-only",
                        base.name,
                        100.0 * drift,
                        expected,
                        actual,
                    ));
                }
            }
        }
        cmp
    }

    /// Renders the comparison against `baseline` as a GitHub-flavoured
    /// markdown drift table — one row per (bench, metric) with its
    /// baseline value, current value, relative drift, and verdict.
    /// Verdicts mirror [`compare`](Self::compare) exactly: counters
    /// judge symmetric drift against `tolerance`, wall/RSS rows judge
    /// *growth only* against `wall_tolerance` and can at most warn.
    /// Written into the CI job summary so a failing gate names the
    /// offending counter at a glance.
    pub fn markdown_table(
        &self,
        baseline: &PerfReport,
        tolerance: f64,
        wall_tolerance: f64,
    ) -> String {
        let mut out = String::from(
            "| bench | metric | baseline | current | drift | verdict |\n\
             |---|---|---:|---:|---:|---|\n",
        );
        let row =
            |out: &mut String, bench: &str, metric: &str, base: f64, now: f64, gates: bool| {
                let signed_drift = (now - base) / base.abs().max(1e-12);
                let verdict = if gates && relative_drift(now, base) > tolerance {
                    "**FAIL**"
                } else if gates {
                    "ok"
                } else if signed_drift > wall_tolerance {
                    "warn"
                } else {
                    "ok (warn-only)"
                };
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} | {:+.1}% | {verdict} |",
                    escape_cell(bench),
                    escape_cell(metric),
                    fmt_num(base),
                    fmt_num(now),
                    100.0 * signed_drift,
                );
            };
        for base in &baseline.benches {
            let Some(current) = self.bench(&base.name) else {
                let _ = writeln!(
                    out,
                    "| {} | — | — | — | — | **FAIL** (bench missing from current run) |",
                    escape_cell(&base.name)
                );
                continue;
            };
            for (counter, expected) in &base.counters {
                match current.counters.iter().find(|(k, _)| k == counter) {
                    Some((_, actual)) => {
                        row(&mut out, &base.name, counter, *expected, *actual, true)
                    }
                    None => {
                        let _ = writeln!(
                            out,
                            "| {} | {} | {} | — | — | **FAIL** (counter missing) |",
                            escape_cell(&base.name),
                            escape_cell(counter),
                            fmt_num(*expected)
                        );
                    }
                }
            }
            row(
                &mut out,
                &base.name,
                "wall_ms",
                base.wall_ms,
                current.wall_ms,
                false,
            );
            if let (Some(b), Some(c)) = (base.peak_rss_mb, current.peak_rss_mb) {
                row(&mut out, &base.name, "peak_rss_mb", b, c, false);
            }
            for (phase, expected) in &base.phases {
                if let Some((_, actual)) = current.phases.iter().find(|(k, _)| k == phase) {
                    let metric = format!("phase:{phase}");
                    row(&mut out, &base.name, &metric, *expected, *actual, false);
                }
            }
        }
        out
    }
}

/// Escapes a value for a GitHub-flavoured-markdown table cell: `|`
/// would end the cell and a newline the row, so a counter named after,
/// say, a filter expression can't silently shear the drift table.
fn escape_cell(s: &str) -> String {
    s.replace('|', "\\|").replace(['\n', '\r'], " ")
}

/// Drift relative to the *baseline*, so "±20 %" means what it says:
/// +21 % growth and −21 % shrinkage both trip a 0.20 tolerance. A
/// counter appearing where the baseline had zero is effectively
/// infinite drift (the baseline must be regenerated alongside such a
/// change).
fn relative_drift(actual: f64, expected: f64) -> f64 {
    if actual == expected {
        return 0.0;
    }
    (actual - expected).abs() / expected.abs().max(1e-12)
}

fn pairs(items: &[(String, f64)]) -> String {
    items
        .iter()
        .map(|(k, v)| format!("{}: {}", quote(k), fmt_num(*v)))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> PerfReport {
        PerfReport {
            benches: vec![
                PerfBench {
                    name: "sim_year".into(),
                    wall_ms: 123.456,
                    peak_rss_mb: Some(512.25),
                    counters: vec![("events".into(), 108000.0), ("jobs".into(), 54000.0)],
                    phases: vec![("schedule".into(), 80.0), ("events".into(), 40.0)],
                    rates: vec![("events_per_s".into(), 874912.252)],
                },
                PerfBench {
                    name: "sweep_grid".into(),
                    wall_ms: 250.0,
                    peak_rss_mb: None,
                    counters: vec![("cells".into(), 36.0)],
                    phases: vec![],
                    rates: vec![],
                },
            ],
        }
    }

    #[test]
    fn json_roundtrips() {
        let r = report();
        let parsed = PerfReport::parse(&r.to_json()).expect("own output parses");
        assert_eq!(parsed.benches.len(), 2);
        assert_eq!(parsed.bench("sim_year").unwrap().counters[0].1, 108000.0);
        assert!((parsed.bench("sim_year").unwrap().wall_ms - 123.456).abs() < 1e-9);
        assert!((parsed.bench("sim_year").unwrap().rates[0].1 - 874912.252).abs() < 1e-9);
        assert_eq!(parsed.bench("sweep_grid").unwrap().counters[0].1, 36.0);
        // Peak RSS survives the roundtrip where present and stays absent
        // where it was unavailable.
        assert_eq!(parsed.bench("sim_year").unwrap().peak_rss_mb, Some(512.25));
        assert_eq!(parsed.bench("sweep_grid").unwrap().peak_rss_mb, None);
    }

    #[test]
    fn rss_growth_only_warns() {
        let mut current = report();
        current.benches[0].peak_rss_mb = Some(512.25 * 4.0);
        let cmp = current.compare(&report(), 0.2, 0.5);
        assert!(cmp.passed(), "RSS must never fail the gate");
        assert!(
            cmp.warnings.iter().any(|w| w.contains("peak RSS")),
            "{:?}",
            cmp.warnings
        );
        // A bench without RSS on either side warns about nothing.
        let cmp = report().compare(&report(), 0.2, 0.5);
        assert!(cmp.warnings.is_empty());
    }

    #[test]
    fn markdown_table_names_offending_counters() {
        let mut current = report();
        current.benches[0].counters[0].1 *= 1.5; // events +50%: FAIL
        current.benches[0].wall_ms *= 3.0; // wall: warn-only
        let table = current.markdown_table(&report(), 0.2, 0.5);
        let events_row = table
            .lines()
            .find(|l| l.contains("| events |"))
            .expect("events row present");
        assert!(events_row.contains("**FAIL**"), "{events_row}");
        assert!(events_row.contains("+50.0%"), "{events_row}");
        let wall_row = table
            .lines()
            .find(|l| l.contains("| sim_year | wall_ms |"))
            .expect("wall row present");
        assert!(wall_row.contains("warn"), "{wall_row}");
        assert!(!wall_row.contains("FAIL"), "{wall_row}");
        // Verdicts mirror the gate: a wall *improvement* (or a regression
        // inside wall_tolerance) is not a warning, even when it exceeds
        // the much tighter counter tolerance.
        let mut faster = report();
        faster.benches[0].wall_ms *= 0.5;
        faster.benches[1].wall_ms *= 1.4; // +40% < 50% wall tolerance
        let table = faster.markdown_table(&report(), 0.2, 0.5);
        for line in table.lines().filter(|l| l.contains("| wall_ms |")) {
            assert!(line.contains("ok (warn-only)"), "{line}");
        }
        let jobs_row = table
            .lines()
            .find(|l| l.contains("| jobs |"))
            .expect("jobs row present");
        assert!(jobs_row.contains("| ok |"), "{jobs_row}");
        // Peak RSS appears as a warn-only row when both sides report it.
        assert!(table.contains("| peak_rss_mb |"), "{table}");
    }

    #[test]
    fn local_peak_rss_is_sane_on_linux() {
        if let Some(rss) = peak_rss_mb() {
            // The test binary plainly uses more than 1 MB and (sanity
            // bound) less than a terabyte.
            assert!(rss > 1.0 && rss < 1e6, "implausible peak RSS {rss}");
        }
    }

    #[test]
    fn reset_peak_rss_drops_the_high_water_mark() {
        // Non-Linux (or a kernel refusing clear_refs) makes the whole
        // mechanism a documented no-op — nothing to regress.
        if peak_rss_mb().is_none() {
            return;
        }
        // Inflate the high-water mark well above steady state with a
        // touched (page-resident) buffer, then free it.
        let mut buffer = vec![0u8; 192 << 20];
        for i in (0..buffer.len()).step_by(4096) {
            buffer[i] = 1;
        }
        std::hint::black_box(&buffer);
        drop(buffer);
        let inflated = peak_rss_mb().expect("linux path");
        assert!(inflated > 150.0, "buffer never became resident");
        if !reset_peak_rss() {
            return; // best-effort: no permission to clear_refs here
        }
        let after = peak_rss_mb().expect("linux path");
        assert!(
            after < inflated - 100.0,
            "reset must drop the high-water mark below the freed \
             buffer's peak (before {inflated:.0} MB, after {after:.0} MB) — \
             a bench measured after this reset would inherit its \
             predecessor's allocations"
        );
    }

    #[test]
    fn equal_reports_pass_the_gate() {
        let cmp = report().compare(&report(), 0.2, 0.5);
        assert!(cmp.passed());
        assert!(cmp.warnings.is_empty());
    }

    #[test]
    fn counter_drift_fails_both_directions() {
        let mut current = report();
        current.benches[0].counters[0].1 *= 1.21; // +21% work
        let cmp = current.compare(&report(), 0.2, 0.5);
        assert!(!cmp.passed(), "tolerance is baseline-relative");
        assert!(cmp.failures[0].contains("events"), "{:?}", cmp.failures);

        let mut current = report();
        current.benches[1].counters[0].1 = 10.0; // grid shrank
        let cmp = current.compare(&report(), 0.2, 0.5);
        assert!(!cmp.passed(), "shrunk workloads must fail too");
    }

    #[test]
    fn counters_appearing_from_zero_fail() {
        let mut baseline = report();
        baseline.benches[1]
            .counters
            .push(("price_tables".into(), 0.0));
        assert!(
            baseline.compare(&baseline, 0.2, 0.5).passed(),
            "0 == 0 passes"
        );
        let mut current = baseline.clone();
        current.benches[1].counters[1].1 = 4.0;
        assert!(
            !current.compare(&baseline, 0.2, 0.5).passed(),
            "0 → 4 must force a baseline regeneration"
        );
    }

    #[test]
    fn wall_time_only_warns() {
        let mut current = report();
        current.benches[0].wall_ms *= 3.0;
        let cmp = current.compare(&report(), 0.2, 0.5);
        assert!(cmp.passed(), "wall noise must not fail the gate");
        assert_eq!(cmp.warnings.len(), 1);
        assert!(cmp.warnings[0].contains("warn-only"));
    }

    #[test]
    fn missing_bench_fails() {
        let current = PerfReport::default();
        let cmp = current.compare(&report(), 0.2, 0.5);
        assert_eq!(cmp.failures.len(), 2);
    }

    #[test]
    fn within_tolerance_drift_passes() {
        let mut current = report();
        current.benches[0].counters[0].1 *= 1.1; // +10% < 20%
        assert!(current.compare(&report(), 0.2, 0.5).passed());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(PerfReport::parse("not json").is_err());
        assert!(PerfReport::parse("{}").is_err(), "missing benches");
        assert!(PerfReport::parse("{\"benches\": 3}").is_err());
    }

    #[test]
    fn phases_roundtrip_and_only_warn() {
        let r = report();
        let parsed = PerfReport::parse(&r.to_json()).expect("own output parses");
        assert_eq!(
            parsed.bench("sim_year").unwrap().phases,
            r.benches[0].phases
        );
        // A bench with no phases serializes without a `phases` object,
        // keeping pre-phase baselines byte-compatible.
        assert!(!r.to_json().contains("\"phases\": {}"));

        let mut current = report();
        current.benches[0].phases[0].1 *= 3.0; // schedule phase 3× slower
        let cmp = current.compare(&report(), 0.2, 0.5);
        assert!(cmp.passed(), "phase drift must never fail the gate");
        assert!(
            cmp.warnings.iter().any(|w| w.contains("phase `schedule`")),
            "{:?}",
            cmp.warnings
        );
        // Phases show up in the drift table as warn-only rows.
        let table = current.markdown_table(&report(), 0.2, 0.5);
        let row = table
            .lines()
            .find(|l| l.contains("| phase:schedule |"))
            .expect("phase row present");
        assert!(row.contains("warn"), "{row}");
        assert!(!row.contains("FAIL"), "{row}");
    }

    #[test]
    fn markdown_escapes_pipes_and_newlines_in_names() {
        let mut baseline = report();
        baseline.benches[0]
            .counters
            .push(("odd|name\nsplit".into(), 7.0));
        let mut current = baseline.clone();
        current.benches[0].counters[2].1 = 700.0; // drifted: FAIL row
        let table = current.markdown_table(&baseline, 0.2, 0.5);
        let row = table
            .lines()
            .find(|l| l.contains("odd\\|name split"))
            .expect("escaped counter row present");
        assert!(row.contains("**FAIL**"), "{row}");
        // Every data row still has exactly 6 columns — the raw `|` and
        // newline would have sheared the table.
        for line in table.lines().skip(2) {
            assert_eq!(line.matches(" | ").count(), 5, "{line}");
        }
    }
}
