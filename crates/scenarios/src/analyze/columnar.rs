//! The `<csv>.cols` columnar sidecar: the shard's aggregate rows,
//! re-encoded column-major so re-analysis never re-parses CSV text.
//!
//! A shard worker finishing under `--columnar` writes one sidecar next
//! to its CSV: the same 34 columns as [`crate::agg::CSV_HEADERS`], the
//! eleven configuration axes dictionary-encoded (`str` columns — a few
//! distinct labels indexed by `u32`), every numeric column stored as
//! raw `f64` bits (`f64` columns). The header binds the sidecar to its
//! source CSV by row count, byte count and FNV-1a content hash — the
//! same triple the `.manifest` checkpoint carries — so `scenarios
//! analyze` can trust a sidecar without ever opening the CSV.
//!
//! Layout (all integers little-endian), versioned by the leading
//! schema string [`COLS_SCHEMA`]:
//!
//! ```text
//! u32 schema-len, schema bytes            "green-cols/1"
//! u64 rows                                data rows (no header row)
//! u64 csv_bytes                           source CSV size, header included
//! u64 csv_hash                            FNV-1a of the source CSV bytes
//! u32 column-count
//! per column:  u32 name-len, name bytes, u8 type tag (0 str, 1 f64)
//! per column, in declaration order:
//!   str column: u32 dict-len, dict entries (u32 len + bytes),
//!               rows × u32 dict index
//!   f64 column: rows × u64 (f64::to_bits)
//! ```
//!
//! The type tags' wire names (`str`, `f64`) and the schema string are
//! documented in `docs/analytics.md`; `tools/check_docs.sh` fails if
//! one is added without documentation.

use std::io;
use std::path::{Path, PathBuf};

use crate::agg::CSV_HEADERS;
use crate::shard::Fnv1a;

/// Schema tag leading every sidecar (version bumps rename it).
pub const COLS_SCHEMA: &str = "green-cols/1";

/// How many leading CSV columns are configuration-axis strings; the
/// rest are numeric.
const STR_COLUMNS: usize = 11;

/// The columnar sidecar path of a shard CSV: `<csv>.cols`.
pub fn cols_path(csv: &Path) -> PathBuf {
    let mut name = csv.file_name().unwrap_or_default().to_os_string();
    name.push(".cols");
    csv.with_file_name(name)
}

/// A column's physical encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// Dictionary-encoded string column (the configuration axes).
    Str,
    /// Raw `f64`-bits column (every metric).
    F64,
}

impl ColumnType {
    /// The wire name of the type tag.
    pub fn wire_name(self) -> &'static str {
        match self {
            ColumnType::Str => "str",
            ColumnType::F64 => "f64",
        }
    }

    fn tag(self) -> u8 {
        match self {
            ColumnType::Str => 0,
            ColumnType::F64 => 1,
        }
    }

    fn from_tag(tag: u8) -> Option<ColumnType> {
        match tag {
            0 => Some(ColumnType::Str),
            1 => Some(ColumnType::F64),
            _ => None,
        }
    }
}

/// One decoded column.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Dictionary + per-row dictionary indices.
    Str { dict: Vec<String>, rows: Vec<u32> },
    /// Per-row values.
    F64(Vec<f64>),
}

impl Column {
    /// The string at `row` (panics on an `f64` column — the engine
    /// resolves column roles before reading).
    pub fn str_at(&self, row: usize) -> &str {
        match self {
            Column::Str { dict, rows } => &dict[rows[row] as usize],
            Column::F64(_) => panic!("str_at on an f64 column"),
        }
    }

    /// The value at `row` (panics on a `str` column).
    pub fn f64_at(&self, row: usize) -> f64 {
        match self {
            Column::F64(values) => values[row],
            Column::Str { .. } => panic!("f64_at on a str column"),
        }
    }
}

/// A fully decoded sidecar.
#[derive(Debug, Clone, PartialEq)]
pub struct ColsFile {
    /// Data rows (no header row).
    pub rows: usize,
    /// Source CSV size in bytes (header included).
    pub csv_bytes: u64,
    /// FNV-1a hash of the source CSV bytes.
    pub csv_hash: u64,
    /// `(name, column)` in [`CSV_HEADERS`] order.
    pub columns: Vec<(String, Column)>,
}

fn invalid(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// Parses the aggregate CSV at `csv` and writes its `<csv>.cols`
/// sidecar. Called by `run_shard` at completion (the CSV is final and
/// hash-stable at that point), and idempotent: rewriting produces the
/// same bytes.
pub fn write_sidecar(csv: &Path) -> io::Result<()> {
    write_sidecar_chaos(csv, &green_chaos::NoopChaos)
}

/// [`write_sidecar`] with the `columnar_sidecar` failpoint armed. The
/// sidecar is written atomically (tmp → sync → rename), so a crash
/// mid-encode leaves no partial sidecar for `analyze` to trip on —
/// and a stale one is caught by the binding triple anyway.
pub fn write_sidecar_chaos<C: green_chaos::Chaos>(csv: &Path, chaos: &C) -> io::Result<()> {
    let bytes = std::fs::read(csv)?;
    let text = std::str::from_utf8(&bytes)
        .map_err(|_| invalid(format!("{}: not UTF-8", csv.display())))?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| invalid(format!("{}: empty CSV", csv.display())))?;
    let expected = green_bench::export::csv_line(&CSV_HEADERS);
    if header != expected.trim_end() {
        return Err(invalid(format!(
            "{}: header is not the aggregate CSV header",
            csv.display()
        )));
    }

    let mut dicts: Vec<Vec<String>> = vec![Vec::new(); STR_COLUMNS];
    let mut str_rows: Vec<Vec<u32>> = vec![Vec::new(); STR_COLUMNS];
    let mut f64_rows: Vec<Vec<f64>> = vec![Vec::new(); CSV_HEADERS.len() - STR_COLUMNS];
    let mut rows = 0usize;
    for line in lines.filter(|l| !l.is_empty()) {
        let fields = split_row(line, csv)?;
        for (i, field) in fields.iter().take(STR_COLUMNS).enumerate() {
            // First-seen dictionary order: deterministic, and tiny —
            // axis columns have a handful of distinct labels.
            let index = match dicts[i].iter().position(|d| d == field) {
                Some(index) => index,
                None => {
                    dicts[i].push((*field).to_string());
                    dicts[i].len() - 1
                }
            };
            str_rows[i].push(index as u32);
        }
        for (i, field) in fields.iter().skip(STR_COLUMNS).enumerate() {
            let value: f64 = field.parse().map_err(|_| {
                invalid(format!(
                    "{}: row {rows}: `{field}` is not a number (column `{}`)",
                    csv.display(),
                    CSV_HEADERS[STR_COLUMNS + i]
                ))
            })?;
            f64_rows[i].push(value);
        }
        rows += 1;
    }

    let mut out: Vec<u8> = Vec::new();
    put_str(&mut out, COLS_SCHEMA);
    put_u64(&mut out, rows as u64);
    put_u64(&mut out, bytes.len() as u64);
    put_u64(&mut out, Fnv1a::hash(&bytes));
    put_u32(&mut out, CSV_HEADERS.len() as u32);
    for (i, name) in CSV_HEADERS.iter().enumerate() {
        put_str(&mut out, name);
        let ty = if i < STR_COLUMNS {
            ColumnType::Str
        } else {
            ColumnType::F64
        };
        out.push(ty.tag());
    }
    for (i, dict) in dicts.iter().enumerate() {
        put_u32(&mut out, dict.len() as u32);
        for entry in dict {
            put_str(&mut out, entry);
        }
        for &index in &str_rows[i] {
            put_u32(&mut out, index);
        }
    }
    for column in &f64_rows {
        for &value in column {
            put_u64(&mut out, value.to_bits());
        }
    }
    crate::durable_io::write_atomic_chaos(
        &cols_path(csv),
        &out,
        chaos,
        green_chaos::Failpoint::ColumnarSidecar,
    )
}

/// Splits one CSV row. The aggregate schema never emits quoted fields
/// (labels contain no commas or quotes), so a quote means the file is
/// not ours.
fn split_row<'a>(line: &'a str, csv: &Path) -> io::Result<Vec<&'a str>> {
    if line.contains('"') {
        return Err(invalid(format!(
            "{}: quoted CSV fields are not part of the aggregate schema",
            csv.display()
        )));
    }
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != CSV_HEADERS.len() {
        return Err(invalid(format!(
            "{}: row has {} fields, expected {}",
            csv.display(),
            fields.len(),
            CSV_HEADERS.len()
        )));
    }
    Ok(fields)
}

impl ColsFile {
    /// Decodes the sidecar at `path`.
    pub fn load(path: &Path) -> io::Result<ColsFile> {
        let bytes = std::fs::read(path)?;
        let bad = |m: &str| invalid(format!("{}: {m}", path.display()));
        let mut cursor = Cursor {
            bytes: &bytes,
            pos: 0,
        };
        let schema = cursor.take_str().map_err(|e| bad(&e))?;
        if schema != COLS_SCHEMA {
            return Err(bad(&format!(
                "schema `{schema}` (this build reads `{COLS_SCHEMA}`)"
            )));
        }
        let rows = cursor.take_u64().map_err(|e| bad(&e))? as usize;
        let csv_bytes = cursor.take_u64().map_err(|e| bad(&e))?;
        let csv_hash = cursor.take_u64().map_err(|e| bad(&e))?;
        let count = cursor.take_u32().map_err(|e| bad(&e))? as usize;
        let mut names: Vec<(String, ColumnType)> = Vec::with_capacity(count);
        for _ in 0..count {
            let name = cursor.take_str().map_err(|e| bad(&e))?;
            let tag = cursor.take_u8().map_err(|e| bad(&e))?;
            let ty = ColumnType::from_tag(tag)
                .ok_or_else(|| bad(&format!("unknown column type tag {tag}")))?;
            names.push((name, ty));
        }
        let mut columns: Vec<(String, Column)> = Vec::with_capacity(count);
        for (name, ty) in names {
            let column = match ty {
                ColumnType::Str => {
                    let dict_len = cursor.take_u32().map_err(|e| bad(&e))? as usize;
                    let mut dict = Vec::with_capacity(dict_len);
                    for _ in 0..dict_len {
                        dict.push(cursor.take_str().map_err(|e| bad(&e))?);
                    }
                    let mut indices = Vec::with_capacity(rows);
                    for _ in 0..rows {
                        let index = cursor.take_u32().map_err(|e| bad(&e))?;
                        if index as usize >= dict.len() {
                            return Err(bad(&format!(
                                "column `{name}`: dictionary index {index} out of range"
                            )));
                        }
                        indices.push(index);
                    }
                    Column::Str {
                        dict,
                        rows: indices,
                    }
                }
                ColumnType::F64 => {
                    let mut values = Vec::with_capacity(rows);
                    for _ in 0..rows {
                        values.push(f64::from_bits(cursor.take_u64().map_err(|e| bad(&e))?));
                    }
                    Column::F64(values)
                }
            };
            columns.push((name, column));
        }
        if cursor.pos != bytes.len() {
            return Err(bad("trailing bytes after the last column"));
        }
        Ok(ColsFile {
            rows,
            csv_bytes,
            csv_hash,
            columns,
        })
    }

    /// The column named `name`, if present.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| format!("truncated sidecar at byte {}", self.pos))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn take_u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn take_u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn take_u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn take_str(&mut self) -> Result<String, String> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "non-UTF-8 string".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_csv(dir: &Path) -> PathBuf {
        let path = dir.join("sample.csv");
        let mut text = green_bench::export::csv_line(&CSV_HEADERS);
        for (policy, energy) in [("greedy", 1.5), ("energy", 2.5), ("greedy", 3.5)] {
            let mut fields: Vec<String> = vec![
                policy.into(),
                "eba".into(),
                "0+1".into(),
                "2023".into(),
                "24".into(),
                "64".into(),
                "1.000".into(),
                "1.000".into(),
                "0.00".into(),
                "flat".into(),
                "0.0".into(),
            ];
            fields.push("2".into());
            fields.push(format!("{energy:.6}"));
            while fields.len() < CSV_HEADERS.len() {
                fields.push("0.000000".into());
            }
            text.push_str(&green_bench::export::csv_line(&fields));
        }
        std::fs::write(&path, &text).unwrap();
        path
    }

    #[test]
    fn sidecar_roundtrips_and_binds_to_csv() {
        let dir = std::env::temp_dir().join(format!("green-cols-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = sample_csv(&dir);
        write_sidecar(&csv).unwrap();
        let cols = ColsFile::load(&cols_path(&csv)).unwrap();
        let bytes = std::fs::read(&csv).unwrap();
        assert_eq!(cols.rows, 3);
        assert_eq!(cols.csv_bytes, bytes.len() as u64);
        assert_eq!(cols.csv_hash, Fnv1a::hash(&bytes));
        assert_eq!(cols.columns.len(), CSV_HEADERS.len());
        let policy = cols.column("policy").unwrap();
        assert_eq!(policy.str_at(0), "greedy");
        assert_eq!(policy.str_at(1), "energy");
        assert_eq!(policy.str_at(2), "greedy");
        let completed = cols.column("completed_mean").unwrap();
        assert_eq!(completed.f64_at(0), 1.5);
        assert_eq!(completed.f64_at(2), 3.5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewriting_is_byte_stable() {
        let dir = std::env::temp_dir().join(format!("green-cols-stable-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = sample_csv(&dir);
        write_sidecar(&csv).unwrap();
        let first = std::fs::read(cols_path(&csv)).unwrap();
        write_sidecar(&csv).unwrap();
        assert_eq!(first, std::fs::read(cols_path(&csv)).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_truncation_and_wrong_schema() {
        let dir = std::env::temp_dir().join(format!("green-cols-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = sample_csv(&dir);
        write_sidecar(&csv).unwrap();
        let path = cols_path(&csv);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(ColsFile::load(&path).is_err());
        let mut wrong = bytes.clone();
        wrong[4..16].copy_from_slice(b"green-colz/1");
        std::fs::write(&path, &wrong).unwrap();
        assert!(ColsFile::load(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
