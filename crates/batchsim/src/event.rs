//! The simulator's event queue.

use green_units::TimePoint;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Discrete simulation events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A job arrives and is routed by the policy (payload: job index).
    Arrival(usize),
    /// A running job finishes (payload: machine index, job index).
    Finish(usize, usize),
}

/// A timestamped event. Ties break by sequence number, so insertion order
/// is deterministic.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// When the event fires.
    pub at: TimePoint,
    /// Monotone tie-breaker.
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need earliest-first.
        other
            .at
            .as_secs()
            .total_cmp(&self.at.as_secs())
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Earliest-first event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules an event.
    pub fn push(&mut self, at: TimePoint, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(TimePoint::from_secs(5.0), EventKind::Arrival(1));
        q.push(TimePoint::from_secs(1.0), EventKind::Arrival(2));
        q.push(TimePoint::from_secs(3.0), EventKind::Finish(0, 3));
        let order: Vec<f64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_secs())
            .collect();
        assert_eq!(order, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = TimePoint::from_secs(2.0);
        q.push(t, EventKind::Arrival(10));
        q.push(t, EventKind::Arrival(20));
        q.push(t, EventKind::Arrival(30));
        let ids: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Arrival(i) => i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![10, 20, 30]);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(TimePoint::EPOCH, EventKind::Arrival(0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
