//! The HPC-user sustainability survey (Section 2).
//!
//! The paper surveyed 316 HPC users about energy awareness and released
//! the aggregate data. This crate encodes those published aggregates as
//! the ground truth ([`marginals`]), synthesizes an individual-level
//! respondent dataset exactly consistent with them ([`synth`]), and
//! regenerates Figures 1 and 2 from the synthesized records
//! ([`figures`]) — the same aggregate view the authors released.

pub mod figures;
pub mod marginals;
pub mod questions;
pub mod synth;

pub use figures::{figure1, figure2, Figure1Row, Figure2Row};
pub use marginals::SurveyMarginals;
pub use questions::{CareerStage, DecisionFactor, Importance, Region, SustainabilityMetric};
pub use synth::{synthesize, Respondent};
