#!/usr/bin/env bash
# Consistency check for the docs/ book and README: every repository
# path the docs reference must exist, every CLI flag documented in
# docs/cli.md must appear in a binary's source, and the README must
# link the book. Run from the repository root (CI's `docs` step does).
set -euo pipefail

cd "$(dirname "$0")/.."
failures=0

fail() {
    echo "docs-check FAIL: $*" >&2
    failures=$((failures + 1))
}

# 1. Referenced repository paths exist. Matches crates/..., examples/...,
#    docs/..., tools/... tokens (trailing punctuation stripped).
for doc in docs/*.md README.md; do
    while IFS= read -r path; do
        # Strip sentence punctuation the token regex may have swallowed.
        while [[ "$path" == *. || "$path" == *- || "$path" == */ ]]; do
            path="${path%?}"
        done
        [ -z "$path" ] && continue
        if [ ! -e "$path" ]; then
            fail "$doc references missing path: $path"
        fi
    done < <(grep -oE '(crates|examples|docs|tools)/[A-Za-z0-9_/.-]+' "$doc" | sort -u)
done

# 2. Every --flag documented in docs/cli.md exists in a binary's source.
scenarios_src=crates/scenarios/src/bin/scenarios.rs
green_perf_src=crates/integration/src/bin/green_perf.rs
while IFS= read -r flag; do
    if ! grep -qF -- "\"$flag\"" "$scenarios_src" "$green_perf_src"; then
        fail "docs/cli.md documents $flag but neither binary parses it"
    fi
done < <(grep -oE '(^|[^A-Za-z0-9-])--[a-z][a-z-]+' docs/cli.md | grep -oE '\-\-[a-z][a-z-]+' | sort -u)

# 3. Every [grid]/[workload] key documented in docs/sweep-format.md is a
#    key the parser knows (the KNOWN table in sweep.rs), and vice versa —
#    a new axis must be documented, a renamed one re-documented.
sweep_src=crates/scenarios/src/sweep.rs
known_keys=$(sed -n '/const KNOWN/,/^];/p' "$sweep_src" | grep -oE '"[a-z_]+"' | tr -d '"' \
    | grep -vxE 'grid|workload' | sort -u)  # section names are not keys
doc_keys=$(grep -oE '^\| `[a-z_]+` \|' docs/sweep-format.md | grep -oE '[a-z_]+' | sort -u)
for key in $known_keys; do
    if ! echo "$doc_keys" | grep -qx "$key"; then
        fail "sweep key \`$key\` (sweep.rs KNOWN) is undocumented in docs/sweep-format.md"
    fi
done
for key in $doc_keys; do
    if ! echo "$known_keys" | grep -qx "$key"; then
        fail "docs/sweep-format.md documents \`$key\` but sweep.rs does not parse it"
    fi
done

# 4. The README links every page of the book.
for page in docs/architecture.md docs/sweep-format.md docs/cli.md \
        docs/observability.md docs/orchestration.md docs/analytics.md \
        docs/robustness.md docs/performance.md; do
    if ! grep -q "$page" README.md; then
        fail "README.md does not link $page"
    fi
done

# 6. Every counter/phase wire name the recorder defines is documented in
#    docs/observability.md — a new signal must land with its taxonomy row.
obs_src=crates/obs/src/lib.rs
wire_names=$(grep -oE '=> "[a-z_]+"' "$obs_src" | grep -oE '[a-z_]+' | sort -u)
for name in $wire_names; do
    if ! grep -q "\`$name\`" docs/observability.md; then
        fail "recorder wire name \`$name\` is undocumented in docs/observability.md"
    fi
done

# 7. The orchestrator cannot grow undocumented surface: every flag the
#    `scenarios orchestrate` parser accepts and every event-log record
#    name the wire format defines must appear in docs/orchestration.md.
orch_flags=$(sed -n '/fn orchestrate_main/,/^}$/p' "$scenarios_src" \
    | grep -oE '"--[a-z][a-z-]+"' | tr -d '"' | sort -u)
[ -n "$orch_flags" ] || fail "could not extract orchestrate flags from $scenarios_src"
for flag in $orch_flags; do
    if ! grep -qF -- "\`$flag\`" docs/orchestration.md; then
        fail "orchestrate flag $flag is undocumented in docs/orchestration.md"
    fi
done
events_src=crates/scenarios/src/orchestrate/events.rs
event_names=$(grep -oE '=> "[a-z]+"' "$events_src" | grep -oE '[a-z]+' | sort -u)
[ -n "$event_names" ] || fail "could not extract event names from $events_src"
for name in $event_names; do
    if ! grep -qE "^\| \`$name\` \|" docs/orchestration.md; then
        fail "orchestrate event \`$name\` is undocumented in docs/orchestration.md"
    fi
done

# 8. The analytics surface cannot drift from its page: every flag the
#    `scenarios analyze` parser accepts, every stat column the report
#    emits, and every columnar wire name must appear in docs/analytics.md.
analyze_flags=$(sed -n '/fn analyze_main/,/^}$/p' "$scenarios_src" \
    | grep -oE '"--[a-z][a-z-]+"' | tr -d '"' | sort -u)
[ -n "$analyze_flags" ] || fail "could not extract analyze flags from $scenarios_src"
for flag in $analyze_flags; do
    if ! grep -qF -- "\`$flag\`" docs/analytics.md; then
        fail "analyze flag $flag is undocumented in docs/analytics.md"
    fi
done
analyze_src=crates/scenarios/src/analyze/mod.rs
stat_headers=$(sed -n '/^pub const ANALYZE_STAT_HEADERS/,/^];/p' "$analyze_src" \
    | grep -oE '"[a-z0-9]+"' | tr -d '"' | sort -u)
[ -n "$stat_headers" ] || fail "could not extract stat headers from $analyze_src"
for name in $stat_headers; do
    if ! grep -qE "^\| \`$name\` \|" docs/analytics.md; then
        fail "analyze output column \`$name\` is undocumented in docs/analytics.md"
    fi
done
columnar_src=crates/scenarios/src/analyze/columnar.rs
col_types=$(grep -oE '=> "[a-z0-9]+"' "$columnar_src" | grep -oE '[a-z0-9]+' | sort -u)
[ -n "$col_types" ] || fail "could not extract column wire names from $columnar_src"
for name in $col_types; do
    if ! grep -qE "^\| \`$name\` \|" docs/analytics.md; then
        fail "columnar wire name \`$name\` is undocumented in docs/analytics.md"
    fi
done
if ! grep -q 'green-cols/1' docs/analytics.md; then
    fail "columnar schema string green-cols/1 is undocumented in docs/analytics.md"
fi

# 9. The chaos surface cannot drift from its page: every failpoint
#    wire name the registry defines must have a catalog row in
#    docs/robustness.md, and every `--chaos` flag a binary parses must
#    be documented in docs/cli.md and docs/robustness.md.
chaos_src=crates/chaos/src/lib.rs
failpoint_names=$(sed -n '/pub fn name/,/^    }/p' "$chaos_src" \
    | grep -oE '"[a-z_]+"' | tr -d '"' | sort -u)
[ -n "$failpoint_names" ] || fail "could not extract failpoint names from $chaos_src"
for name in $failpoint_names; do
    if ! grep -qE "^\| \`$name\` \|" docs/robustness.md; then
        fail "failpoint \`$name\` is undocumented in docs/robustness.md"
    fi
done
if grep -qF '"--chaos"' "$scenarios_src"; then
    for doc in docs/cli.md docs/robustness.md; do
        if ! grep -qF -- '--chaos' "$doc"; then
            fail "the --chaos flag is undocumented in $doc"
        fi
    done
else
    fail "docs/robustness.md documents --chaos but $scenarios_src does not parse it"
fi

# 10. The parallel-execution surface cannot drift from its pages: if the
#     scenarios binary parses --threads it must be documented in both
#     docs/cli.md and docs/performance.md, and every thread count in the
#     green-perf SCALING_THREADS ladder must have its scaling_paper_tN /
#     scaling_mega_tN bench names backticked in docs/performance.md.
if grep -qF '"--threads"' "$scenarios_src"; then
    for doc in docs/cli.md docs/performance.md; do
        if ! grep -qF -- '--threads' "$doc"; then
            fail "the --threads flag is undocumented in $doc"
        fi
    done
else
    fail "docs/performance.md documents --threads but $scenarios_src does not parse it"
fi
scaling_threads=$(sed -n 's/.*SCALING_THREADS: \[usize; [0-9]*\] = \[\(.*\)\];.*/\1/p' \
    "$green_perf_src" | tr ',' ' ')
[ -n "$scaling_threads" ] || fail "could not extract SCALING_THREADS from $green_perf_src"
for t in $scaling_threads; do
    for bench in "scaling_paper_t$t" "scaling_mega_t$t"; do
        if ! grep -q "\`$bench\`" docs/performance.md; then
            fail "scaling bench \`$bench\` is undocumented in docs/performance.md"
        fi
    done
done

# 5. Workload presets stay in sync between parser and docs.
for preset in micro tiny quick paper; do
    if ! grep -q "\`$preset\`" docs/sweep-format.md; then
        fail "preset \`$preset\` missing from docs/sweep-format.md"
    fi
done

if [ "$failures" -gt 0 ]; then
    echo "docs-check: $failures failure(s)" >&2
    exit 1
fi
echo "docs-check: OK"
