//! Property tests for sweep expansion and sharding: the Cartesian cell
//! count is exact, expansion enumerates each combination exactly once,
//! random-access expansion ([`Sweep::cell_at`]) is pinned to the loop
//! expansion, and shard ranges are a disjoint exact cover of the grid.

use std::collections::HashSet;

use green_scenarios::{shard_ranges, MethodSpec, PolicySpec, Sweep};
use proptest::prelude::*;

/// Builds a sweep with the given axis lengths (axis values distinct
/// within each axis so cells are distinguishable).
#[allow(clippy::too_many_arguments)] // one parameter per sweep axis, by design
fn sweep_with(
    policies: usize,
    methods: usize,
    users: usize,
    years: usize,
    backfills: usize,
    wscales: usize,
    iscales: usize,
    seeds: usize,
) -> Sweep {
    let policy_pool = [
        PolicySpec::Greedy,
        PolicySpec::Energy,
        PolicySpec::Mixed,
        PolicySpec::Eft,
        PolicySpec::Runtime,
        PolicySpec::GreedyShift(6),
        PolicySpec::GreedyShift(12),
        PolicySpec::Fixed(0),
    ];
    let method_pool = [
        MethodSpec::Eba,
        MethodSpec::Cba,
        MethodSpec::Runtime,
        MethodSpec::Energy,
        MethodSpec::Peak,
    ];
    let mut sweep = Sweep::new("property");
    sweep.policies = policy_pool[..policies].to_vec();
    sweep.methods = method_pool[..methods].to_vec();
    sweep.users = (0..users).map(|i| 8 + 8 * i as u32).collect();
    sweep.sim_years = (0..years).map(|i| 2023 + i as i32).collect();
    sweep.backfill_depths = (0..backfills).map(|i| 16 * (i + 1)).collect();
    sweep.workload_scales = (0..wscales).map(|i| 0.5 + 0.25 * i as f64).collect();
    sweep.intensity_scales = (0..iscales).map(|i| 0.8 + 0.2 * i as f64).collect();
    sweep.seeds = (0..seeds).map(|i| i as u64 + 1).collect();
    sweep
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Expansion produces exactly the product of the axis lengths.
    #[test]
    fn cell_count_is_exact_cartesian_product(
        policies in 1usize..=8,
        methods in 1usize..=5,
        users in 1usize..=3,
        years in 1usize..=3,
        backfills in 1usize..=3,
        wscales in 1usize..=3,
        iscales in 1usize..=3,
        seeds in 1usize..=4,
    ) {
        let sweep = sweep_with(
            policies, methods, users, years, backfills, wscales, iscales, seeds,
        );
        let expected =
            policies * methods * users * years * backfills * wscales * iscales * seeds;
        prop_assert_eq!(sweep.cell_count(), expected);

        let cells = sweep.expand();
        prop_assert_eq!(cells.len(), expected);

        // Indices are dense, configs group by replicate count, and every
        // combination appears exactly once.
        let mut seen = HashSet::new();
        for (i, cell) in cells.iter().enumerate() {
            prop_assert_eq!(cell.index, i);
            prop_assert_eq!(cell.config, i / seeds);
            let key = format!("{:?}", cell.spec);
            prop_assert!(seen.insert(key), "duplicate cell at {}", i);
        }
    }

    /// Random-access expansion is bit-identical to the nested-loop
    /// expansion: `cell_at(i) == expand()[i]` for every index, and
    /// `expand_range` is the corresponding slice. This is the contract
    /// that lets a shard worker of a million-cell grid materialize only
    /// its own range.
    #[test]
    fn cell_at_matches_loop_expansion(
        policies in 1usize..=4,
        methods in 1usize..=3,
        users in 1usize..=2,
        years in 1usize..=2,
        backfills in 1usize..=3,
        wscales in 1usize..=2,
        iscales in 1usize..=3,
        seeds in 1usize..=3,
    ) {
        let sweep = sweep_with(
            policies, methods, users, years, backfills, wscales, iscales, seeds,
        );
        let cells = sweep.expand();
        for (i, cell) in cells.iter().enumerate() {
            prop_assert_eq!(&sweep.cell_at(i), cell, "cell_at({}) diverged", i);
        }
        // An arbitrary interior range slices identically.
        let (a, b) = (cells.len() / 3, cells.len() - cells.len() / 4);
        prop_assert_eq!(sweep.expand_range(a..b).as_slice(), &cells[a..b]);
        prop_assert!(sweep.expand_range(0..0).is_empty());
    }

    /// For any grid shape and any shard count, the shard ranges are a
    /// disjoint exact cover of `0..cells` in expansion order: ascending,
    /// contiguous, config-aligned, balanced to one configuration.
    #[test]
    fn shard_ranges_are_a_disjoint_exact_cover(
        configs in 0usize..=200,
        replicates in 1usize..=5,
        shards in 1usize..=24,
    ) {
        let ranges = shard_ranges(configs, replicates, shards);
        prop_assert_eq!(ranges.len(), shards);
        let mut next = 0usize;
        let mut sizes: Vec<usize> = Vec::new();
        for range in &ranges {
            // Contiguity: each range starts exactly where the previous
            // ended — together they tile 0..cells with no gap or overlap.
            prop_assert_eq!(range.start, next);
            prop_assert!(range.start <= range.end);
            prop_assert_eq!(range.start % replicates, 0, "start not config-aligned");
            prop_assert_eq!(range.end % replicates, 0, "end not config-aligned");
            sizes.push((range.end - range.start) / replicates);
            next = range.end;
        }
        prop_assert_eq!(next, configs * replicates, "cover is not exact");
        // Balance: no shard carries more than one configuration above
        // any other.
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1, "unbalanced shards: {:?}", sizes);
    }

    /// Replicates of a configuration differ only in their seed.
    #[test]
    fn replicates_share_their_configuration(
        policies in 1usize..=4,
        seeds in 2usize..=4,
    ) {
        let sweep = sweep_with(policies, 2, 1, 1, 1, 1, 1, seeds);
        let cells = sweep.expand();
        for chunk in cells.chunks(seeds) {
            let mut base = chunk[0].spec.clone();
            for (r, cell) in chunk.iter().enumerate() {
                prop_assert_eq!(cell.spec.seed, r as u64 + 1);
                base.seed = cell.spec.seed;
                prop_assert_eq!(&base, &cell.spec);
            }
        }
    }
}
