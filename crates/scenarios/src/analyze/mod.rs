//! Out-of-core analytics over sweep output: `scenarios analyze`.
//!
//! A million-cell sweep ends as a 250k-row aggregate CSV (or a
//! directory of shard fragments); this module is the query surface that
//! turns those rows into answers without a full merge and without
//! holding the grid in memory:
//!
//! * [`AnalyzeQuery`] — the query model: `group_by` over the eleven
//!   configuration-axis columns, `metrics` over the numeric columns,
//!   an optional label `filter` (same substring semantics as the sweep
//!   `--filter`);
//! * [`analyze_dir`] — the out-of-core path: shard fragments are
//!   discovered via their `.manifest` sidecars, verified exactly as
//!   [`crate::merge_shards`] verifies them (complete, one sweep/spec,
//!   contiguous tiling, content hashes intact), and folded one shard at
//!   a time in cell-range order — which *is* expansion order, so the
//!   fold visits rows in precisely the order a single pass over the
//!   merged CSV would. Stable fold order makes every statistic
//!   bit-identical for any shard count (`tests/analyze_golden.rs`);
//! * [`analyze_csv`] — the same fold over one already-merged CSV;
//! * [`engine`] — the streaming group-by core: per-group running
//!   moments plus p50/p90/p99 via a deterministic fixed-size quantile
//!   sketch ([`sketch`]) with exact buffering below
//!   [`EXACT_QUANTILE_ROWS`] rows per group;
//! * [`columnar`] — the optional `<csv>.cols` binary sidecar
//!   (`--columnar` on shard runs): dictionary-encoded axes + raw `f64`
//!   metric columns, bound to the CSV by the manifest's row/byte/hash
//!   triple, so re-analysis never re-parses CSV text;
//! * [`AnalyzeReport`] — the result, renderable as a fixed-width table,
//!   CSV, or JSON Lines (schema [`ANALYZE_SCHEMA`]).
//!
//! The CLI flags, output columns and sidecar wire format are documented
//! in `docs/analytics.md` (`tools/check_docs.sh` keeps that page
//! honest).
//!
//! # Example
//!
//! ```
//! use green_scenarios::analyze::{analyze_csv, AnalyzeQuery};
//! use green_scenarios::{MethodSpec, PolicySpec, Sweep, SweepRunner};
//!
//! let mut sweep = Sweep::new("doctest-analyze");
//! sweep.policies = vec![PolicySpec::Greedy, PolicySpec::Energy];
//! sweep.methods = vec![MethodSpec::Eba, MethodSpec::Cba];
//! sweep.seeds = vec![1, 2];
//! let results = SweepRunner::new(2).run(&sweep);
//!
//! let dir = std::env::temp_dir().join(format!("analyze-doctest-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let csv = dir.join("results.csv");
//! results.write_csv(&csv).unwrap();
//!
//! let query = AnalyzeQuery::new(Some("policy"), Some("energy_mwh_mean"), None).unwrap();
//! let report = analyze_csv(&csv, &query).unwrap();
//! assert_eq!(report.groups.len(), 2);        // one group per policy
//! assert_eq!(report.rows_matched, 4);        // 4 configurations scanned
//! assert!(report.to_csv_string().starts_with("policy,metric,rows,"));
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

pub mod columnar;
pub mod engine;
mod input;
pub mod sketch;

pub use columnar::{
    cols_path, write_sidecar, write_sidecar_chaos, ColsFile, Column, ColumnType, COLS_SCHEMA,
};
pub use input::{analyze_csv, analyze_dir, analyze_path};
pub use sketch::QuantileSketch;

use crate::agg::CSV_HEADERS;
use crate::spec::SpecError;

/// Schema tag carried by every JSON Lines output record.
pub const ANALYZE_SCHEMA: &str = "green-analyze/1";

/// Per-group rows a metric buffers exactly before degrading to the
/// fixed-size quantile sketch: below this threshold p50/p90/p99 are
/// exact nearest-rank percentiles, above it they are sketch
/// approximations (still deterministic and shard-count invariant).
pub const EXACT_QUANTILE_ROWS: usize = 4096;

/// The statistic columns of every report row, following the group-by
/// key columns.
pub const ANALYZE_STAT_HEADERS: [&str; 9] = [
    "metric", "rows", "mean", "std", "min", "max", "p50", "p90", "p99",
];

/// How many leading CSV columns are configuration axes (the legal
/// `--group-by` names).
const AXIS_COLUMNS: usize = 11;

/// The configuration-axis column names `--group-by` accepts.
pub fn group_axes() -> &'static [&'static str] {
    &CSV_HEADERS[..AXIS_COLUMNS]
}

/// The numeric column names `--metrics` accepts.
pub fn metric_columns() -> &'static [&'static str] {
    &CSV_HEADERS[AXIS_COLUMNS..]
}

/// One analysis request: what to group on, what to summarize, what to
/// keep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzeQuery {
    /// Group-by axis columns, in output order (validated against
    /// [`group_axes`]).
    pub group_by: Vec<String>,
    /// Metric columns to summarize (validated against
    /// [`metric_columns`]).
    pub metrics: Vec<String>,
    /// Optional substring filter over the `/`-joined axis columns —
    /// the same label the sweep `--filter` matches.
    pub filter: Option<String>,
}

/// The default metric set when `--metrics` is omitted: the headline
/// sustainability columns.
pub const DEFAULT_METRICS: [&str; 5] = [
    "energy_mwh_mean",
    "attr_carbon_kg_mean",
    "credits_mean",
    "mean_wait_h_mean",
    "utilization_mean",
];

impl AnalyzeQuery {
    /// Builds a query from comma-separated CLI spellings. `None`
    /// group-by defaults to `policy,method`; `None` metrics defaults to
    /// [`DEFAULT_METRICS`]. Unknown names are rejected with the list of
    /// valid ones.
    pub fn new(
        group_by: Option<&str>,
        metrics: Option<&str>,
        filter: Option<String>,
    ) -> Result<AnalyzeQuery, SpecError> {
        let split = |list: &str| -> Vec<String> {
            list.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect()
        };
        let group_by = match group_by {
            Some(list) => split(list),
            None => vec!["policy".into(), "method".into()],
        };
        let metrics = match metrics {
            Some(list) => split(list),
            None => DEFAULT_METRICS.iter().map(|m| m.to_string()).collect(),
        };
        if group_by.is_empty() {
            return Err(SpecError("--group-by needs at least one axis".into()));
        }
        if metrics.is_empty() {
            return Err(SpecError("--metrics needs at least one column".into()));
        }
        for axis in &group_by {
            if !group_axes().contains(&axis.as_str()) {
                return Err(SpecError(format!(
                    "unknown group-by axis `{axis}` (valid: {})",
                    group_axes().join(", ")
                )));
            }
        }
        for metric in &metrics {
            if !metric_columns().contains(&metric.as_str()) {
                return Err(SpecError(format!(
                    "unknown metric column `{metric}` (valid: {})",
                    metric_columns().join(", ")
                )));
            }
        }
        Ok(AnalyzeQuery {
            group_by,
            metrics,
            filter,
        })
    }

    /// The group-by columns as indices into the axis columns.
    pub(crate) fn key_axes(&self) -> Vec<usize> {
        self.group_by
            .iter()
            .map(|axis| group_axes().iter().position(|a| a == axis).unwrap())
            .collect()
    }

    /// The metric columns as indices into [`CSV_HEADERS`].
    pub(crate) fn metric_indices(&self) -> Vec<usize> {
        self.metrics
            .iter()
            .map(|m| CSV_HEADERS.iter().position(|h| h == m).unwrap())
            .collect()
    }
}

/// The summary statistics of one metric within one group. Quantiles are
/// exact below [`EXACT_QUANTILE_ROWS`] rows, sketch approximations
/// above — deterministic either way.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricStats {
    /// Rows folded into this metric.
    pub rows: u64,
    /// Arithmetic mean (folded in expansion order).
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for a single row).
    pub std: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 90th percentile (nearest rank).
    pub p90: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
}

/// One group of the report: its key values (parallel to
/// [`AnalyzeReport::group_by`]) and one [`MetricStats`] per requested
/// metric.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSummary {
    /// The group-by column values.
    pub key: Vec<String>,
    /// Per-metric summaries, parallel to [`AnalyzeReport::metrics`].
    pub stats: Vec<MetricStats>,
}

/// A finished analysis: groups in first-seen (expansion) order.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeReport {
    /// The group-by axis names, in key order.
    pub group_by: Vec<String>,
    /// The summarized metric column names.
    pub metrics: Vec<String>,
    /// Rows read from the input.
    pub rows_scanned: usize,
    /// Rows surviving the filter (equal to `rows_scanned` without one).
    pub rows_matched: usize,
    /// One summary per group, first-seen order.
    pub groups: Vec<GroupSummary>,
}

/// Fixed six-decimal formatting — the same convention as the aggregate
/// CSV, keeping report bytes stable across platforms.
fn sig(v: f64) -> String {
    format!("{v:.6}")
}

impl AnalyzeReport {
    /// One output record per group × metric: the group key columns
    /// followed by [`ANALYZE_STAT_HEADERS`].
    fn record_rows(&self) -> Vec<Vec<String>> {
        let mut rows = Vec::new();
        for group in &self.groups {
            for (metric, stats) in self.metrics.iter().zip(&group.stats) {
                let mut row = group.key.clone();
                row.push(metric.clone());
                row.push(stats.rows.to_string());
                for v in [
                    stats.mean, stats.std, stats.min, stats.max, stats.p50, stats.p90, stats.p99,
                ] {
                    row.push(sig(v));
                }
                rows.push(row);
            }
        }
        rows
    }

    /// The report as CSV (group-by columns + stat columns, one line per
    /// group × metric). Byte-identical for any shard layout of the same
    /// grid — the property the CI invariance check `cmp`s.
    pub fn to_csv_string(&self) -> String {
        let headers: Vec<&str> = self
            .group_by
            .iter()
            .map(String::as_str)
            .chain(ANALYZE_STAT_HEADERS)
            .collect();
        let mut out = green_bench::export::csv_line(&headers);
        for row in self.record_rows() {
            out.push_str(&green_bench::export::csv_line(&row));
        }
        out
    }

    /// The report as JSON Lines: one flat object per group × metric,
    /// tagged [`ANALYZE_SCHEMA`], group-by axes as string fields, stats
    /// with the same six-decimal formatting as the CSV.
    pub fn to_jsonl(&self) -> String {
        use green_bench::json::quote;
        let mut out = String::new();
        for group in &self.groups {
            for (metric, stats) in self.metrics.iter().zip(&group.stats) {
                let mut line = format!("{{\"schema\": {}", quote(ANALYZE_SCHEMA));
                for (axis, value) in self.group_by.iter().zip(&group.key) {
                    line.push_str(&format!(", {}: {}", quote(axis), quote(value)));
                }
                line.push_str(&format!(", \"metric\": {}", quote(metric)));
                line.push_str(&format!(", \"rows\": {}", stats.rows));
                for (name, v) in [
                    ("mean", stats.mean),
                    ("std", stats.std),
                    ("min", stats.min),
                    ("max", stats.max),
                    ("p50", stats.p50),
                    ("p90", stats.p90),
                    ("p99", stats.p99),
                ] {
                    line.push_str(&format!(", \"{name}\": {}", sig(v)));
                }
                line.push_str("}\n");
                out.push_str(&line);
            }
        }
        out
    }

    /// A fixed-width table via the shared renderer. The title carries
    /// only the query and row counts — never the input path or shard
    /// count — so the table too is identical across shard layouts.
    pub fn render(&self) -> String {
        let headers: Vec<&str> = self
            .group_by
            .iter()
            .map(String::as_str)
            .chain(ANALYZE_STAT_HEADERS)
            .collect();
        green_bench::render::table(
            &format!(
                "Analyze — group-by {} ({} rows, {} groups)",
                self.group_by.join(","),
                self.rows_matched,
                self.groups.len()
            ),
            &headers,
            &self.record_rows(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_validates_names_and_applies_defaults() {
        let q = AnalyzeQuery::new(None, None, None).unwrap();
        assert_eq!(q.group_by, vec!["policy", "method"]);
        assert_eq!(q.metrics.len(), DEFAULT_METRICS.len());
        let q = AnalyzeQuery::new(Some("users, sim_year"), Some("credits_mean"), None).unwrap();
        assert_eq!(q.group_by, vec!["users", "sim_year"]);
        assert_eq!(q.key_axes(), vec![4, 3]);
        assert_eq!(q.metric_indices(), vec![23]);
        assert!(AnalyzeQuery::new(Some("nope"), None, None).is_err());
        assert!(AnalyzeQuery::new(None, Some("policy"), None).is_err());
        assert!(AnalyzeQuery::new(Some(""), None, None).is_err());
    }

    #[test]
    fn report_renders_all_three_formats() {
        let report = AnalyzeReport {
            group_by: vec!["policy".into()],
            metrics: vec!["credits_mean".into()],
            rows_scanned: 2,
            rows_matched: 2,
            groups: vec![GroupSummary {
                key: vec!["greedy".into()],
                stats: vec![MetricStats {
                    rows: 2,
                    mean: 1.5,
                    std: 0.5,
                    min: 1.0,
                    max: 2.0,
                    p50: 1.0,
                    p90: 2.0,
                    p99: 2.0,
                }],
            }],
        };
        let csv = report.to_csv_string();
        assert!(csv.starts_with("policy,metric,rows,mean,std,min,max,p50,p90,p99\n"));
        assert!(csv.contains("greedy,credits_mean,2,1.500000"));
        let jsonl = report.to_jsonl();
        let parsed = green_bench::json::Json::parse(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(
            parsed
                .get("schema")
                .and_then(green_bench::json::Json::as_str),
            Some(ANALYZE_SCHEMA)
        );
        assert_eq!(
            parsed
                .get("policy")
                .and_then(green_bench::json::Json::as_str),
            Some("greedy")
        );
        assert!(report.render().contains("group-by policy"));
    }
}
