//! The paper's published aggregate results, encoded as data.
//!
//! Counts quoted directly in Section 2.2 are exact; per-bar counts the
//! paper only shows graphically (Figures 1 and 2) are read off the
//! figures and constrained by the quoted anchors (e.g. exactly 36
//! respondents know their machine's Green500 standing; 25 rate energy
//! efficiency very important; 83 rate performance very important).

use serde::{Deserialize, Serialize};

use crate::questions::{DecisionFactor, SustainabilityMetric};

/// Everything Section 2.2 reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurveyMarginals {
    /// Total responses received.
    pub responses: usize,
    /// Respondents completing ≥90 % of the survey (the analysis set).
    pub completed: usize,
    /// Respondents answering the node-hour usage questions (the paper's
    /// quoted percentages imply ≈203 answered: 148 aware = 73 %).
    pub answered_node_questions: usize,
    /// Respondents answering the energy questions (51 aware = 27 %
    /// implies ≈189).
    pub answered_energy_questions: usize,
    /// Location counts: Europe, North America, Oceania, China,
    /// undisclosed.
    pub regions: [usize; 5],
    /// Career-stage counts: grad students, early career, senior
    /// (the remainder of `responses` is unreported).
    pub careers: [usize; 3],
    /// Aware of how many node-hours their jobs consume.
    pub aware_node_hours: usize,
    /// Took steps to reduce node-hours.
    pub reduce_node_hours: usize,
    /// Very or mildly concerned about finishing within their allocation.
    pub concerned_allocation: usize,
    /// Aware of their workloads' energy consumption.
    pub aware_energy: usize,
    /// Took steps to reduce energy use.
    pub reduce_energy: usize,
    /// Of those reducing energy, the share unaware of their consumption
    /// (the paper: 39 %).
    pub reduce_energy_unaware_pct: f64,
    /// Know the Green500 list exists.
    pub know_green500: usize,
    /// Know carbon intensity as a concept.
    pub know_carbon_intensity: usize,
    /// Figure 1 bars: per metric, `[yes, no, not-applicable]` counts.
    pub fig1: [(SustainabilityMetric, [usize; 3]); 4],
    /// Figure 2 bars: per factor, `[not important, somewhat, very]`.
    pub fig2: [(DecisionFactor, [usize; 3]); 8],
}

impl SurveyMarginals {
    /// The paper's numbers.
    pub fn paper() -> SurveyMarginals {
        use DecisionFactor as F;
        use SustainabilityMetric as M;
        SurveyMarginals {
            responses: 316,
            completed: 192,
            answered_node_questions: 203,
            answered_energy_questions: 189,
            regions: [166, 104, 4, 4, 38],
            careers: [73, 97, 99],
            aware_node_hours: 148,
            reduce_node_hours: 142,
            concerned_allocation: 166,
            aware_energy: 51,
            reduce_energy: 54,
            reduce_energy_unaware_pct: 0.39,
            know_green500: 94,
            know_carbon_intensity: 55,
            // [yes, no, n/a] per metric; the Green500 "yes" anchor (36) is
            // quoted in the text, the rest read off Figure 1.
            fig1: [
                (M::Green500, [36, 132, 24]),
                (M::SpecSert, [10, 136, 46]),
                (M::CarbonIntensity, [21, 139, 32]),
                (M::Pue, [18, 138, 36]),
            ],
            // [not, somewhat, very] per factor; anchors: performance very
            // = 83 (46 %), energy very = 25 (12 %).
            fig2: [
                (F::Hardware, [17, 62, 101]),
                (F::Queue, [24, 80, 76]),
                (F::Performance, [20, 77, 83]),
                (F::Funding, [45, 60, 75]),
                (F::Software, [35, 81, 64]),
                (F::EaseOfUse, [35, 89, 56]),
                (F::Experience, [36, 94, 50]),
                (F::Energy, [92, 63, 25]),
            ],
        }
    }

    /// Share of respondents aware of their energy use (the paper: 27 %).
    pub fn aware_energy_share(&self) -> f64 {
        self.aware_energy as f64 / self.answered_energy_questions as f64
    }

    /// Share aware of node-hour use (the paper: 73 %).
    pub fn aware_node_hours_share(&self) -> f64 {
        self.aware_node_hours as f64 / self.answered_node_questions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoted_percentages_hold() {
        let m = SurveyMarginals::paper();
        assert!((m.aware_node_hours_share() - 0.73).abs() < 0.015);
        assert!((m.aware_energy_share() - 0.27).abs() < 0.015);
        // 70% took steps to reduce node-hours; 30% energy.
        assert!(
            (m.reduce_node_hours as f64 / m.answered_node_questions as f64 - 0.70).abs() < 0.02
        );
        assert!((m.reduce_energy as f64 / m.answered_energy_questions as f64 - 0.30).abs() < 0.02);
        // >80% concerned about finishing within allocation.
        assert!(m.concerned_allocation as f64 / m.answered_node_questions as f64 > 0.80);
    }

    #[test]
    fn region_counts_sum_to_responses() {
        let m = SurveyMarginals::paper();
        assert_eq!(m.regions.iter().sum::<usize>(), m.responses);
    }

    #[test]
    fn figure_rows_sum_to_completed() {
        let m = SurveyMarginals::paper();
        for (metric, counts) in &m.fig1 {
            assert_eq!(
                counts.iter().sum::<usize>(),
                m.completed,
                "{}",
                metric.label()
            );
        }
        for (factor, counts) in &m.fig2 {
            assert_eq!(
                counts.iter().sum::<usize>(),
                180,
                "{} (Figure 2 answered by 180)",
                factor.label()
            );
        }
    }

    #[test]
    fn energy_least_important_factor() {
        let m = SurveyMarginals::paper();
        let energy_very = m
            .fig2
            .iter()
            .find(|(f, _)| *f == DecisionFactor::Energy)
            .unwrap()
            .1[2];
        for (factor, counts) in &m.fig2 {
            if *factor != DecisionFactor::Energy {
                assert!(
                    counts[2] > energy_very,
                    "{} should outrank energy",
                    factor.label()
                );
            }
        }
    }

    #[test]
    fn green500_awareness_anchor() {
        let m = SurveyMarginals::paper();
        let g = m
            .fig1
            .iter()
            .find(|(f, _)| *f == SustainabilityMetric::Green500)
            .unwrap()
            .1;
        // 36 of the 94 who know the list also know their machine's rank.
        assert_eq!(g[0], 36);
        assert!(g[0] < m.know_green500);
    }
}
