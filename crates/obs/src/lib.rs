//! **green-obs**: zero-cost-when-disabled structured observability.
//!
//! The sweep stack — simulator scheduler loop, sweep runner, shard
//! writer, market settlement — is instrumented against the [`Recorder`]
//! trait using **static dispatch**: every instrumented entry point is
//! generic over `R: Recorder`, and every timing read is guarded by the
//! associated constant [`Recorder::ENABLED`]. With the default
//! [`NoopRecorder`] (`ENABLED = false`) the guard is a compile-time
//! `false`, so the instrumentation monomorphizes to *nothing* — no
//! clock reads, no atomic traffic, no branches — preserving every BENCH
//! baseline and byte-identity contract of the uninstrumented code.
//! `tests/observability.rs` (repo root) holds the overhead guard: the
//! enabled path must produce bit-identical simulation results and stay
//! within a bounded wall-time factor of the no-op path.
//!
//! Three signal kinds, all aggregated (never per-event allocations):
//!
//! * [`Counter`] — deterministic work counts (events drained,
//!   ready-user merges, settlements, ledger CAS retries…). On a
//!   single-threaded run these are pure functions of the workload, so
//!   `green-perf` gates them like any other work counter.
//! * [`Phase`] — wall-nanosecond attribution to the pipeline phases
//!   `schedule` / `events` / `settle` / `attribute` / `csv` /
//!   `prepare`. Timings are machine-dependent; consumers report them
//!   warn-only, like wall time.
//! * [`SpanKind`] — coarse spans (one per sweep cell, one per shard
//!   checkpoint) aggregated as count / total / max nanoseconds.
//!
//! [`StatsRecorder`] is the shipped recording implementation: a fixed
//! set of relaxed atomics, safe to share across sweep worker threads.
//! [`ObsSnapshot`] is its read-out, consumed by `green-perf --phases`
//! (phase breakdown in the JSON schema and drift table) and by the
//! shard progress sidecar (`<out>.progress`). See
//! `docs/observability.md` for the taxonomy and how to add an
//! instrumentation point.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Deterministic work counters. On a single-threaded run every one of
/// these is a pure function of the workload — `green-perf` commits them
/// to the bench baseline and fails the gate when they drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Simulator events popped off the calendar queue.
    EventsDrained = 0,
    /// Merge-frontier steps over ready users' sub-queues taken by
    /// scheduling passes (the scheduler's unit of queue work).
    ReadyUserMerges = 1,
    /// Scheduling passes run (`Cluster::schedule_into` invocations).
    SchedulePasses = 2,
    /// Job outcomes settled through the market ledger.
    JobsSettled = 3,
    /// Transactions appended to the credit store's logs.
    LedgerTxns = 4,
    /// CAS retries inside the sharded ledger's balance loops (zero
    /// without contention — a tripwire counter on single-threaded
    /// benches).
    LedgerCasRetries = 5,
    /// Sweep cells executed.
    CellsRun = 6,
    /// Per-cell lookups served by the shared `SweepCaches` (realization
    /// reused instead of rebuilt).
    CacheHits = 7,
    /// Distinct artifacts the cache prepass had to build (the misses).
    CacheMisses = 8,
    /// Aggregate CSV rows flushed by the streaming sink.
    RowsFlushed = 9,
    /// Manifest/progress checkpoints written by the shard writer.
    Checkpoints = 10,
    /// Checkpointed rows hash-verified by a `--resume`.
    ResumedRowsVerified = 11,
}

impl Counter {
    /// Every counter, in discriminant order.
    pub const ALL: [Counter; 12] = [
        Counter::EventsDrained,
        Counter::ReadyUserMerges,
        Counter::SchedulePasses,
        Counter::JobsSettled,
        Counter::LedgerTxns,
        Counter::LedgerCasRetries,
        Counter::CellsRun,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::RowsFlushed,
        Counter::Checkpoints,
        Counter::ResumedRowsVerified,
    ];

    /// The counter's stable wire name (JSON keys, bench counters, docs).
    pub fn name(self) -> &'static str {
        match self {
            Counter::EventsDrained => "events_drained",
            Counter::ReadyUserMerges => "ready_user_merges",
            Counter::SchedulePasses => "schedule_passes",
            Counter::JobsSettled => "jobs_settled",
            Counter::LedgerTxns => "ledger_txns",
            Counter::LedgerCasRetries => "ledger_cas_retries",
            Counter::CellsRun => "cells_run",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::RowsFlushed => "rows_flushed",
            Counter::Checkpoints => "checkpoints",
            Counter::ResumedRowsVerified => "resumed_rows_verified",
        }
    }
}

/// Pipeline phases wall time is attributed to. Timings are
/// machine-dependent: report them like wall time (warn-only), never
/// gate on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Scheduling decisions: policy evaluation, submission, scheduling
    /// passes (including backfill scans).
    Schedule = 0,
    /// Event-queue traffic and simulation loop overhead.
    Events = 1,
    /// Market settlement through the credit store.
    Settle = 2,
    /// Outcome construction: window-integrated carbon attribution and
    /// the five accounting charges.
    Attribute = 3,
    /// Aggregate CSV row rendering and writing.
    Csv = 4,
    /// Shared world and cache construction before any cell runs.
    Prepare = 5,
}

impl Phase {
    /// Every phase, in discriminant order.
    pub const ALL: [Phase; 6] = [
        Phase::Schedule,
        Phase::Events,
        Phase::Settle,
        Phase::Attribute,
        Phase::Csv,
        Phase::Prepare,
    ];

    /// The phase's stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Schedule => "schedule",
            Phase::Events => "events",
            Phase::Settle => "settle",
            Phase::Attribute => "attribute",
            Phase::Csv => "csv",
            Phase::Prepare => "prepare",
        }
    }
}

/// Coarse span kinds, aggregated as count / total / max nanoseconds —
/// never one record per span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// One sweep cell: simulate + settle + metric extraction.
    Cell = 0,
    /// One shard checkpoint: manifest + progress sidecar rewrite.
    Checkpoint = 1,
}

impl SpanKind {
    /// Every span kind, in discriminant order.
    pub const ALL: [SpanKind; 2] = [SpanKind::Cell, SpanKind::Checkpoint];

    /// The span kind's stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Cell => "cell",
            SpanKind::Checkpoint => "checkpoint",
        }
    }
}

/// The statically dispatched observability sink.
///
/// Instrumented code is generic over `R: Recorder` and guards every
/// clock read with `R::ENABLED`, so a disabled recorder compiles the
/// instrumentation away entirely. Implementations must be cheap and
/// thread-safe: sweep workers share one recorder by reference.
pub trait Recorder: Sync {
    /// Whether this recorder observes anything. `false` lets the
    /// compiler eliminate instrumentation (and its `Instant` reads)
    /// wholesale; implementations other than [`NoopRecorder`] should
    /// leave it `true`.
    const ENABLED: bool = true;

    /// Adds `n` to a deterministic work counter.
    fn add(&self, counter: Counter, n: u64);

    /// Attributes `ns` wall nanoseconds to a phase.
    fn phase_ns(&self, phase: Phase, ns: u64);

    /// Records one completed span of `ns` wall nanoseconds.
    fn span_ns(&self, span: SpanKind, ns: u64);

    /// A read-out of everything recorded so far, if this recorder keeps
    /// state (the no-op recorder returns `None`). Used by the shard
    /// progress sidecar to embed phase timings mid-run.
    fn snapshot(&self) -> Option<ObsSnapshot> {
        None
    }
}

/// The disabled recorder: every method is an empty inline stub and
/// [`Recorder::ENABLED`] is `false`, so instrumented generics
/// monomorphize to exactly the uninstrumented code.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn add(&self, _counter: Counter, _n: u64) {}

    #[inline(always)]
    fn phase_ns(&self, _phase: Phase, _ns: u64) {}

    #[inline(always)]
    fn span_ns(&self, _span: SpanKind, _ns: u64) {}
}

/// Aggregated statistics of one span kind.
#[derive(Debug, Default)]
struct SpanStats {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

/// The shipped recording implementation: a fixed array of relaxed
/// atomics per signal kind. Contention-free enough to share across a
/// sweep's worker threads (every hot-path signal is recorded once per
/// cell or once per run, never per event).
#[derive(Debug, Default)]
pub struct StatsRecorder {
    counters: [AtomicU64; Counter::ALL.len()],
    phases: [AtomicU64; Phase::ALL.len()],
    spans: [SpanStats; SpanKind::ALL.len()],
}

impl StatsRecorder {
    /// A fresh, all-zero recorder.
    pub fn new() -> StatsRecorder {
        StatsRecorder::default()
    }

    /// The current value of one counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// Nanoseconds attributed to one phase so far.
    pub fn phase(&self, phase: Phase) -> u64 {
        self.phases[phase as usize].load(Ordering::Relaxed)
    }
}

impl Recorder for StatsRecorder {
    #[inline]
    fn add(&self, counter: Counter, n: u64) {
        self.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    fn phase_ns(&self, phase: Phase, ns: u64) {
        self.phases[phase as usize].fetch_add(ns, Ordering::Relaxed);
    }

    #[inline]
    fn span_ns(&self, span: SpanKind, ns: u64) {
        let stats = &self.spans[span as usize];
        stats.count.fetch_add(1, Ordering::Relaxed);
        stats.total_ns.fetch_add(ns, Ordering::Relaxed);
        stats.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Option<ObsSnapshot> {
        let counters = Counter::ALL
            .iter()
            .map(|&c| (c.name(), self.counter(c)))
            .filter(|(_, v)| *v > 0)
            .collect();
        let phases_ms = Phase::ALL
            .iter()
            .map(|&p| (p.name(), self.phase(p) as f64 / 1e6))
            .filter(|(_, ms)| *ms > 0.0)
            .collect();
        let spans = SpanKind::ALL
            .iter()
            .map(|&s| {
                let stats = &self.spans[s as usize];
                SpanSnapshot {
                    kind: s.name(),
                    count: stats.count.load(Ordering::Relaxed),
                    total_ms: stats.total_ns.load(Ordering::Relaxed) as f64 / 1e6,
                    max_ms: stats.max_ns.load(Ordering::Relaxed) as f64 / 1e6,
                }
            })
            .filter(|s| s.count > 0)
            .collect();
        Some(ObsSnapshot {
            counters,
            phases_ms,
            spans,
        })
    }
}

/// Aggregate of one span kind in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// [`SpanKind::name`] of the aggregated spans.
    pub kind: &'static str,
    /// Spans recorded.
    pub count: u64,
    /// Total wall milliseconds across all spans.
    pub total_ms: f64,
    /// The slowest single span, milliseconds.
    pub max_ms: f64,
}

/// A point-in-time read-out of a [`StatsRecorder`]: only signals that
/// actually fired (zero entries are elided, so consumers never report
/// phantom phases).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObsSnapshot {
    /// Counter name → value, in [`Counter::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// Phase name → wall milliseconds, in [`Phase::ALL`] order.
    pub phases_ms: Vec<(&'static str, f64)>,
    /// Span aggregates, in [`SpanKind::ALL`] order.
    pub spans: Vec<SpanSnapshot>,
}

/// A stopwatch that only reads the clock when the recorder is enabled.
/// With `R = NoopRecorder` both `start` and `elapsed_ns` are constants
/// the optimizer deletes.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch<R: Recorder> {
    at: Option<Instant>,
    _recorder: core::marker::PhantomData<R>,
}

impl<R: Recorder> Stopwatch<R> {
    /// Starts the watch (a no-op for disabled recorders).
    #[inline]
    pub fn start() -> Stopwatch<R> {
        Stopwatch {
            at: R::ENABLED.then(Instant::now),
            _recorder: core::marker::PhantomData,
        }
    }

    /// Nanoseconds since [`start`](Stopwatch::start); `0` when disabled.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.at.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0)
    }

    /// Records the elapsed time as one span and restarts the watch.
    #[inline]
    pub fn lap_span(&mut self, recorder: &R, span: SpanKind) {
        if R::ENABLED {
            recorder.span_ns(span, self.elapsed_ns());
            self.at = Some(Instant::now());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_stateless() {
        const { assert!(!NoopRecorder::ENABLED) };
        let rec = NoopRecorder;
        rec.add(Counter::EventsDrained, 10);
        rec.phase_ns(Phase::Schedule, 10);
        rec.span_ns(SpanKind::Cell, 10);
        assert!(rec.snapshot().is_none());
        let sw = Stopwatch::<NoopRecorder>::start();
        assert_eq!(sw.elapsed_ns(), 0, "disabled stopwatch never reads time");
    }

    #[test]
    fn stats_recorder_accumulates() {
        let rec = StatsRecorder::new();
        rec.add(Counter::EventsDrained, 5);
        rec.add(Counter::EventsDrained, 7);
        rec.phase_ns(Phase::Schedule, 1_500_000);
        rec.span_ns(SpanKind::Cell, 2_000_000);
        rec.span_ns(SpanKind::Cell, 4_000_000);
        assert_eq!(rec.counter(Counter::EventsDrained), 12);
        assert_eq!(rec.counter(Counter::CellsRun), 0);
        assert_eq!(rec.phase(Phase::Schedule), 1_500_000);

        let snap = rec.snapshot().expect("stats recorder keeps state");
        assert_eq!(snap.counters, vec![("events_drained", 12)]);
        assert_eq!(snap.phases_ms, vec![("schedule", 1.5)]);
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].kind, "cell");
        assert_eq!(snap.spans[0].count, 2);
        assert!((snap.spans[0].total_ms - 6.0).abs() < 1e-9);
        assert!((snap.spans[0].max_ms - 4.0).abs() < 1e-9);
    }

    #[test]
    fn wire_names_are_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(Phase::ALL.iter().map(|p| p.name()));
        names.extend(SpanKind::ALL.iter().map(|s| s.name()));
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "duplicate wire name");
    }

    #[test]
    fn enabled_stopwatch_measures() {
        let rec = StatsRecorder::new();
        let mut sw = Stopwatch::<StatsRecorder>::start();
        std::hint::black_box(vec![0u8; 1024]);
        sw.lap_span(&rec, SpanKind::Checkpoint);
        let snap = rec.snapshot().unwrap();
        assert_eq!(snap.spans[0].count, 1);
    }
}
