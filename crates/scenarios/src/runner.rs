//! The parallel sweep runner.
//!
//! Expensive state is built **once** and shared by reference across
//! worker threads:
//!
//! * the base [`Trace`] (plus one scaled variant per distinct
//!   `workload_scale`),
//! * one projected [`PlacementTable`] per distinct fleet subset,
//! * the fleet machine specs.
//!
//! Only the per-replicate hourly intensity realization is derived inside
//! a worker (a few thousand floats — regenerating beats synchronizing).
//! Workers claim cell indices from an atomic counter and write results
//! into per-index slots, so the assembled output is a pure function of
//! the sweep spec: **thread count cannot change a single byte** of the
//! aggregated results, which `tests/determinism.rs` asserts.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use green_batchsim::{
    intensity_for, run_cell, MarketInputs, PlacementTable, RunMetrics, SimConfig,
};
use green_carbon::HourlyTrace;
use green_machines::{simulation_fleet, FleetMachine};
use green_market::{market_population, price_table, settle_run, CreditBank, ShardedLedger};
use green_perfmodel::{CrossMachinePredictor, MachineBehavior};
use green_workload::Trace;

use crate::agg::{CellSummary, SweepResults};
use crate::spec::ScenarioSpec;
use crate::sweep::{Cell, Sweep};

/// Scalar metrics extracted from one simulation run (one cell).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellMetrics {
    /// Jobs completed.
    pub completed: usize,
    /// Jobs no machine could take.
    pub rejected: usize,
    /// Total energy, MWh.
    pub energy_mwh: f64,
    /// Operational carbon, kgCO2e.
    pub op_carbon_kg: f64,
    /// Attributed carbon, kgCO2e.
    pub attr_carbon_kg: f64,
    /// Total charge under the cell's accounting method.
    pub credits: f64,
    /// Mean queue wait, hours.
    pub mean_wait_h: f64,
    /// Makespan, hours.
    pub makespan_h: f64,
    /// Machine-neutral work, core-hours.
    pub work_core_h: f64,
    /// Busy core-time over fleet capacity × makespan.
    pub utilization: f64,
    /// Credits collected at posted market prices (0 when the cell has no
    /// market).
    pub posted_credits: f64,
    /// Credits banked from off-peak savings after cap and decay.
    pub banked_credits: f64,
}

impl CellMetrics {
    /// Extracts the scalar summary from a run. `capacity_cores` is the
    /// total core count of the simulated fleet subset (Desktop pool
    /// already multiplied by the user population).
    pub fn of(metrics: &RunMetrics, spec: &ScenarioSpec, capacity_cores: f64) -> CellMetrics {
        let busy_core_s: f64 = metrics
            .outcomes
            .iter()
            .map(|o| (o.end_s - o.start_s) * o.cores as f64)
            .sum();
        let makespan_h = metrics.makespan_hours();
        let utilization = if makespan_h > 0.0 && capacity_cores > 0.0 {
            busy_core_s / 3600.0 / (capacity_cores * makespan_h)
        } else {
            0.0
        };
        CellMetrics {
            completed: metrics.outcomes.len(),
            rejected: metrics.rejected,
            energy_mwh: metrics.total_energy_mwh(),
            op_carbon_kg: metrics.operational_carbon_kg(),
            attr_carbon_kg: metrics.attributed_carbon_kg(),
            credits: metrics.total_cost(spec.method.cost_index()),
            mean_wait_h: metrics.mean_wait_hours(),
            makespan_h,
            work_core_h: metrics.total_work(),
            utilization,
            posted_credits: 0.0,
            banked_credits: 0.0,
        }
    }
}

/// The shared artifacts of one simulated user population: its trace
/// variants (one per workload scale) and placement tables (one per fleet
/// subset). The submitting population changes the trace itself — who
/// owns which application archetypes — so each distinct `users` value
/// gets its own world slice.
pub struct PopulationWorld {
    /// The user-population size this slice models.
    pub users: u32,
    /// Trace variants: `(workload_scale, trace)`, deduplicated.
    pub traces: Vec<(f64, Trace)>,
    /// The full-fleet placement table for this population's archetypes.
    pub table: PlacementTable,
    /// Projected tables and sub-fleets per distinct fleet subset:
    /// `(indices, sub_fleet, sub_table)`.
    pub fleets: Vec<(Vec<usize>, Vec<FleetMachine>, PlacementTable)>,
}

/// Shared, immutable sweep state — built once, borrowed by every worker.
pub struct SweepWorld {
    /// The Table 5 fleet (full).
    pub fleet: Vec<FleetMachine>,
    /// One slice per distinct `users` axis value.
    pub populations: Vec<PopulationWorld>,
    /// Seed for the market agent population (the workload seed, so the
    /// same simulated people submit the jobs and react to prices).
    pub agent_seed: u64,
}

impl SweepWorld {
    /// Builds every shared artifact a sweep needs.
    pub fn build(sweep: &Sweep) -> SweepWorld {
        let fleet = simulation_fleet();
        let behaviors: Vec<MachineBehavior> = fleet
            .iter()
            .map(|m| MachineBehavior::for_spec(&m.spec))
            .collect();
        let predictor = CrossMachinePredictor::train(behaviors, 2, sweep.workload.seed);

        let mut populations: Vec<PopulationWorld> = Vec::new();
        for &users in &sweep.users {
            if populations.iter().any(|p| p.users == users) {
                continue;
            }
            // The users axis varies the *submitting population*: same
            // total demand (unique_jobs fixed by the preset), spread over
            // `users` people — which also resizes the per-user Desktop
            // pool through SimConfig.users below.
            let mut config = sweep.workload.trace_config();
            config.users = users;
            let base = Trace::generate(&config, &predictor);
            let base = if sweep.workload.doubled {
                base.doubled()
            } else {
                base
            };
            let table = PlacementTable::build(&base, &fleet, &predictor);

            let mut traces: Vec<(f64, Trace)> = Vec::new();
            for &scale in &sweep.workload_scales {
                if traces.iter().any(|(s, _)| *s == scale) {
                    continue;
                }
                let trace = if scale == 1.0 {
                    base.clone()
                } else {
                    base.scaled(scale, sweep.workload.seed)
                };
                traces.push((scale, trace));
            }

            let mut fleets: Vec<(Vec<usize>, Vec<FleetMachine>, PlacementTable)> = Vec::new();
            for subset in &sweep.fleets {
                if fleets.iter().any(|(s, _, _)| s == subset) {
                    continue;
                }
                let sub_fleet: Vec<FleetMachine> =
                    subset.iter().map(|&i| fleet[i].clone()).collect();
                let sub_table = table.project(subset);
                fleets.push((subset.clone(), sub_fleet, sub_table));
            }

            populations.push(PopulationWorld {
                users,
                traces,
                table,
                fleets,
            });
        }

        SweepWorld {
            fleet,
            populations,
            agent_seed: sweep.workload.seed,
        }
    }

    fn population_for(&self, users: u32) -> &PopulationWorld {
        self.populations
            .iter()
            .find(|p| p.users == users)
            .expect("population prepared at build time")
    }

    /// Runs one cell against the shared state.
    pub fn run_cell(&self, spec: &ScenarioSpec) -> CellMetrics {
        let population = self.population_for(spec.users);
        let trace = &population
            .traces
            .iter()
            .find(|(s, _)| *s == spec.workload_scale)
            .expect("scale prepared at build time")
            .1;
        let (_, sub_fleet, sub_table) = population
            .fleets
            .iter()
            .find(|(s, _, _)| s.as_slice() == spec.fleet.as_slice())
            .expect("fleet subset prepared at build time");
        // The replicate's intensity realization: seeded traces, then the
        // cell's scale/jitter perturbation.
        let intensity: Vec<HourlyTrace> = intensity_for(sub_fleet, spec.seed)
            .iter()
            .enumerate()
            .map(|(m, t)| {
                if spec.intensity_scale == 1.0 && spec.intensity_jitter == 0.0 {
                    t.clone()
                } else {
                    t.perturbed(
                        spec.intensity_scale,
                        spec.intensity_jitter,
                        spec.seed ^ (m as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    )
                }
            })
            .collect();
        // The market, when active: posted prices compiled against this
        // cell's intensity realization, agents seeded from the shared
        // workload seed and scaled by the cell's elasticity.
        // One compiled price table per market cell; cloned once into the
        // simulator inputs (only when the market actually drives
        // decisions — settlement-only cells must simulate identically to
        // their no-market counterparts), with this copy kept for
        // settlement below.
        let prices = spec
            .market_active()
            .then(|| price_table(&intensity, spec.price_schedule));
        let config = SimConfig {
            policy: spec.policy.to_policy(),
            decision_method: spec.method.to_method(),
            sim_year: spec.sim_year,
            users: spec.users,
            backfill_depth: spec.backfill_depth,
            market: spec.market_drives_decisions().then(|| MarketInputs {
                prices: prices.clone().expect("prices exist when market is active"),
                agents: market_population(spec.users as usize, self.agent_seed, spec.elasticity),
                max_delay_hours: MAX_DELAY_HOURS,
                shift_threshold: SHIFT_THRESHOLD,
            }),
        };
        let metrics = run_cell(trace, sub_fleet, sub_table, &intensity, config);
        let capacity: f64 = sub_fleet
            .iter()
            .map(|m| {
                if m.per_user {
                    m.spec.cores as f64 * spec.users as f64
                } else {
                    m.spec.cores as f64 * m.nodes as f64
                }
            })
            .sum();
        let mut cell = CellMetrics::of(&metrics, spec, capacity);
        if let Some(prices) = &prices {
            // Settle the run through the sharded store: the ledger on
            // the hot path, per cell, with banking of off-peak savings.
            let store = ShardedLedger::new(8);
            let mut bank = CreditBank::new(spec.banking_cap, BANK_DECAY);
            let run = settle_run(
                &metrics.outcomes,
                spec.method.cost_index(),
                prices,
                &store,
                &mut bank,
                BUDGET_FACTOR,
            );
            cell.posted_credits = run.posted_spent;
            cell.banked_credits = run.banked;
        }
        cell
    }
}

/// Daily decay applied to banked savings in market cells.
const BANK_DECAY: f64 = 0.05;

/// Market-wide cap on any agent's submission delay.
const MAX_DELAY_HOURS: u32 = 24;

/// Base relative saving required before an agent shifts; an agent's
/// effective threshold is this over their elasticity, so the
/// `elasticities` axis genuinely grades how much of the population
/// responds (at 0.10, unit-elastic users need a 10 % posted saving).
const SHIFT_THRESHOLD: f64 = 0.10;

/// Per-user budget headroom over the mean posted demand in market
/// settlement (1.25 = 25 % slack; heavy users still hit the
/// `debit_up_to` clamp).
const BUDGET_FACTOR: f64 = 1.25;

/// Progress callback: `(cells_done, cells_total)` after each cell.
pub type ProgressFn = dyn Fn(usize, usize) + Sync;

/// The `/`-joined label a `--filter` substring is matched against.
pub fn cell_label(spec: &ScenarioSpec) -> String {
    spec.config_label().join("/")
}

/// The distinct values of one cell attribute, in first-seen order.
fn dedup_by<T: PartialEq>(cells: &[Cell], f: impl Fn(&Cell) -> T) -> Vec<T> {
    let mut values: Vec<T> = Vec::new();
    for cell in cells {
        let value = f(cell);
        if !values.contains(&value) {
            values.push(value);
        }
    }
    values
}

/// Keeps only the cells of configurations whose label matches `filter`
/// (case-sensitive substring; `None`/empty keeps everything).
fn filter_cells(cells: Vec<Cell>, filter: Option<&str>) -> Vec<Cell> {
    let Some(filter) = filter.filter(|f| !f.is_empty()) else {
        return cells;
    };
    cells
        .into_iter()
        .filter(|c| cell_label(&c.spec).contains(filter))
        .collect()
}

/// The parallel sweep driver.
pub struct SweepRunner {
    threads: usize,
}

impl Default for SweepRunner {
    fn default() -> Self {
        SweepRunner::new(0)
    }
}

impl SweepRunner {
    /// A runner fanning out over `threads` workers (`0` = one per
    /// available core).
    pub fn new(threads: usize) -> SweepRunner {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        SweepRunner { threads }
    }

    /// The worker count this runner fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs the sweep end to end: build shared world, execute every cell,
    /// aggregate replicates. Results are in expansion order regardless of
    /// scheduling.
    pub fn run(&self, sweep: &Sweep) -> SweepResults {
        self.run_with_progress(sweep, None)
    }

    /// [`run`](SweepRunner::run) with an optional progress callback.
    pub fn run_with_progress(&self, sweep: &Sweep, progress: Option<&ProgressFn>) -> SweepResults {
        self.run_filtered(sweep, None, progress)
    }

    /// Runs only the grid configurations whose label (the `/`-joined
    /// [`ScenarioSpec::config_label`]) contains `filter` — the
    /// iterate-on-one-axis workflow of `scenarios --filter`. A `None`
    /// (or empty) filter runs everything; matching configurations keep
    /// their full replicate sets and expansion order.
    pub fn run_filtered(
        &self,
        sweep: &Sweep,
        filter: Option<&str>,
        progress: Option<&ProgressFn>,
    ) -> SweepResults {
        sweep.validate().expect("invalid sweep");
        let cells = filter_cells(sweep.expand(), filter);
        // Build only the world slices the surviving cells reach — the
        // point of `--filter` is fast iteration, so a one-cell filter
        // must not pay for every population/scale/fleet of the full
        // grid. The retained variants are bit-identical to the ones the
        // unfiltered sweep would build (same seeds, same dedup).
        let mut needed = sweep.clone();
        needed.users = dedup_by(&cells, |c| c.spec.users);
        needed.workload_scales = dedup_by(&cells, |c| c.spec.workload_scale);
        needed.fleets = dedup_by(&cells, |c| c.spec.fleet.clone());
        let world = SweepWorld::build(&needed);
        let n = cells.len();
        let results = self.execute(&world, &cells, progress);

        let replicates = sweep.seeds.len();
        let mut summaries = Vec::with_capacity(n / replicates);
        for chunk in results.chunks(replicates) {
            let config_spec = &cells[summaries.len() * replicates].spec;
            summaries.push(CellSummary::of(config_spec, chunk));
        }
        SweepResults {
            name: sweep.name.clone(),
            replicates,
            cells: summaries,
        }
    }

    /// Executes every cell, fanning out across workers; slot-per-index
    /// collection keeps output order equal to expansion order.
    fn execute(
        &self,
        world: &SweepWorld,
        cells: &[Cell],
        progress: Option<&ProgressFn>,
    ) -> Vec<CellMetrics> {
        let n = cells.len();
        let workers = self.threads.min(n.max(1));
        if workers <= 1 {
            return cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let m = world.run_cell(&c.spec);
                    if let Some(cb) = progress {
                        cb(i + 1, n);
                    }
                    m
                })
                .collect();
        }
        let slots: Vec<Mutex<Option<CellMetrics>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let metrics = world.run_cell(&cells[i].spec);
                    *slots[i].lock().expect("slot lock") = Some(metrics);
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if let Some(cb) = progress {
                        cb(finished, n);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock")
                    .expect("every cell executed")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{MethodSpec, PolicySpec};

    fn tiny_sweep() -> Sweep {
        let mut sweep = Sweep::new("runner-test");
        sweep.policies = vec![PolicySpec::Greedy, PolicySpec::Eft];
        sweep.methods = vec![MethodSpec::Eba];
        sweep.seeds = vec![1, 2];
        sweep
    }

    #[test]
    fn shared_world_dedupes_variants() {
        let mut sweep = tiny_sweep();
        sweep.workload_scales = vec![1.0, 0.5, 1.0];
        sweep.fleets = vec![vec![0, 1, 2, 3], vec![0, 2], vec![0, 2]];
        sweep.users = vec![24, 48, 24];
        let world = SweepWorld::build(&sweep);
        assert_eq!(world.fleet.len(), 4);
        assert_eq!(world.populations.len(), 2);
        for population in &world.populations {
            assert_eq!(population.traces.len(), 2);
            assert_eq!(population.fleets.len(), 2);
            assert_eq!(population.table.machine_count(), 4);
        }
    }

    #[test]
    fn users_axis_varies_the_submitting_population() {
        let mut sweep = tiny_sweep();
        sweep.policies = vec![PolicySpec::Greedy];
        sweep.methods = vec![MethodSpec::Eba];
        sweep.users = vec![24, 96];
        sweep.seeds = vec![1];
        let results = SweepRunner::new(0).run(&sweep);
        assert_eq!(results.cells.len(), 2);
        let (small, large) = (&results.cells[0], &results.cells[1]);
        assert_eq!(small.spec.users, 24);
        assert_eq!(large.spec.users, 96);
        // Different populations submit genuinely different workloads:
        // the same demand spread over 4x the users changes energy,
        // credits and waits, not just the utilization denominator.
        assert_ne!(small.energy_mwh.mean, large.energy_mwh.mean);
        assert_ne!(small.credits.mean, large.credits.mean);
    }

    #[test]
    fn runner_aggregates_in_expansion_order() {
        let sweep = tiny_sweep();
        let results = SweepRunner::new(2).run(&sweep);
        assert_eq!(results.cells.len(), 2);
        assert_eq!(results.replicates, 2);
        assert_eq!(results.cells[0].spec.policy, PolicySpec::Greedy);
        assert_eq!(results.cells[1].spec.policy, PolicySpec::Eft);
        for cell in &results.cells {
            assert_eq!(cell.completed.n, 2);
            assert!(cell.completed.mean > 0.0);
            assert!(cell.energy_mwh.mean > 0.0);
            assert!(cell.credits.mean > 0.0);
            assert!(cell.utilization.mean > 0.0 && cell.utilization.mean <= 1.0);
        }
    }

    #[test]
    fn filtered_runs_match_the_full_sweep() {
        let sweep = tiny_sweep();
        let full = SweepRunner::new(1).run(&sweep);
        // Filtering to one policy reproduces that configuration's
        // aggregate bit for bit (the narrowed world builds the same
        // shared artifacts).
        let filtered = SweepRunner::new(1).run_filtered(&sweep, Some("eft/"), None);
        assert_eq!(filtered.cells.len(), 1);
        assert_eq!(filtered.cells[0], full.cells[1]);
        // A filter that matches nothing runs nothing.
        let none = SweepRunner::new(1).run_filtered(&sweep, Some("no-such-cell"), None);
        assert!(none.cells.is_empty());
    }

    #[test]
    fn banking_axis_does_not_perturb_the_simulation() {
        // The banking cap is settlement-only: a greedy/flat-price cell
        // with banking enabled must place, time, and charge every job
        // exactly like its no-market twin — only the settlement columns
        // may differ.
        let mut sweep = tiny_sweep();
        sweep.policies = vec![PolicySpec::Greedy];
        sweep.methods = vec![MethodSpec::Cba];
        sweep.seeds = vec![1];
        sweep.banking_caps = vec![0.0, 50.0];
        let results = SweepRunner::new(1).run(&sweep);
        let (off, on) = (&results.cells[0], &results.cells[1]);
        assert_eq!(off.energy_mwh, on.energy_mwh);
        assert_eq!(off.attr_carbon_kg, on.attr_carbon_kg);
        assert_eq!(off.mean_wait_h, on.mean_wait_h);
        assert_eq!(off.credits, on.credits);
        assert_eq!(off.posted_credits.mean, 0.0, "no market, no settlement");
        assert!(on.posted_credits.mean > 0.0, "banking cell settles");
        assert_eq!(on.banked_credits.mean, 0.0, "flat prices bank nothing");
    }

    #[test]
    fn replicate_seeds_actually_vary_outcomes() {
        let mut sweep = tiny_sweep();
        sweep.policies = vec![PolicySpec::Greedy];
        // CBA quotes depend on the intensity realization, so replicate
        // seeds must produce spread.
        sweep.methods = vec![MethodSpec::Cba];
        sweep.seeds = vec![1, 2, 3];
        let results = SweepRunner::new(0).run(&sweep);
        let cell = &results.cells[0];
        assert!(cell.credits.stddev > 0.0, "replicates should differ");
        assert!(cell.credits.ci95 > 0.0);
    }
}
